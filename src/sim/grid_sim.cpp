#include "sim/grid_sim.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/profiler.h"
#include "core/rng.h"
#include "grid/global.h"

namespace lgs {

const char* to_string(GridRouting r) {
  switch (r) {
    case GridRouting::kIsolated:
      return "isolated";
    case GridRouting::kThreshold:
      return "threshold";
    case GridRouting::kEconomic:
      return "economic";
    case GridRouting::kGlobalPlan:
      return "global-plan";
  }
  return "?";
}

ExchangePolicy to_exchange_policy(GridRouting r) {
  switch (r) {
    case GridRouting::kIsolated:
      return ExchangePolicy::kIsolated;
    case GridRouting::kThreshold:
      return ExchangePolicy::kThreshold;
    case GridRouting::kEconomic:
      return ExchangePolicy::kEconomic;
    case GridRouting::kGlobalPlan:
      break;
  }
  throw std::invalid_argument("global-plan has no exchange policy");
}

LightGrid make_skewed_grid(int n, int base_procs, double skew) {
  if (n < 1) throw std::invalid_argument("grid needs at least one cluster");
  if (base_procs < 1) throw std::invalid_argument("base_procs must be >= 1");
  if (skew < 1.0) throw std::invalid_argument("skew must be >= 1");
  static const Interconnect kNets[] = {Interconnect::kMyrinet,
                                       Interconnect::kGigabitEthernet,
                                       Interconnect::kFastEthernet};
  LightGrid g;
  g.name = "skewed-" + std::to_string(n) + "x" + std::to_string(base_procs);
  for (int i = 0; i < n; ++i) {
    const double frac = n > 1 ? static_cast<double>(i) / (n - 1) : 0.0;
    Cluster c;
    c.id = static_cast<ClusterId>(i);
    c.name = "cluster-" + std::to_string(i);
    c.nodes = std::max(
        1, static_cast<int>(std::lround(base_procs * std::pow(skew, -frac))));
    c.cpus_per_node = 1;
    c.speed = std::pow(skew, frac / 2.0);
    c.net = kNets[i % 3];
    c.owner_community = i % 4;
    g.clusters.push_back(std::move(c));
  }
  return g;
}

std::vector<JobSet> split_by_community(JobSet jobs, std::size_t n) {
  if (n == 0) throw std::invalid_argument("cannot split across 0 clusters");
  std::vector<JobSet> out(n);
  for (Job& j : jobs) {
    const std::size_t home =
        static_cast<std::size_t>(j.community < 0 ? 0 : j.community) % n;
    out[home].push_back(std::move(j));
  }
  return out;
}

GridSim::GridSim(const LightGrid& grid, const GridSimOptions& opts,
                 Arena* arena)
    : grid_(grid),
      opts_(opts),
      arena_(arena != nullptr ? *arena : owned_arena_),
      sim_(ArenaRef(arena_)),
      store_(ArenaRef(arena_)),
      pending_(ArenaAllocator<Pending>(ArenaRef(arena_))),
      plan_(ArenaAllocator<std::uint32_t>(ArenaRef(arena_))),
      route_order_(ArenaAllocator<std::uint32_t>(ArenaRef(arena_))) {
  if (grid_.clusters.empty())
    throw std::invalid_argument("grid without clusters");
  for (const Cluster& c : grid_.clusters)
    clusters_.push_back(std::make_unique<OnlineCluster>(
        sim_, c, opts_.cluster, ArenaRef(arena_)));
  if (!opts_.bags.empty()) {
    server_ = std::make_unique<CentralServer>(opts_.bags);
    for (auto& c : clusters_)
      c->set_besteffort_source(server_->make_source());
  }
}

void GridSim::submit(std::size_t home, const Job& j) {
  if (ran_) throw std::logic_error("submit after run()");
  if (borrowed_ != nullptr)
    throw std::logic_error("cannot mix submit() with submit_store()");
  if (home >= clusters_.size())
    throw std::invalid_argument("home cluster out of range");
  store_.append(j);
  pending_.push_back(Pending{static_cast<std::uint32_t>(home),
                             static_cast<std::uint32_t>(store_.size() - 1)});
}

void GridSim::submit_workloads(const std::vector<JobSet>& per_cluster) {
  if (per_cluster.size() > clusters_.size())
    throw std::invalid_argument("more workloads than clusters");
  std::size_t total = 0;
  for (const JobSet& jobs : per_cluster) total += jobs.size();
  pending_.reserve(pending_.size() + total);
  store_.reserve(store_.size() + total);
  for (std::size_t i = 0; i < per_cluster.size(); ++i) {
    // Routing may migrate jobs elsewhere, but the home counts are the
    // right order of magnitude to pre-size each cluster's bookkeeping.
    clusters_[i]->reserve_submissions(per_cluster[i].size());
    for (const Job& j : per_cluster[i]) submit(i, j);
  }
}

std::vector<std::size_t> group_pending_by_home(const JobStore& store,
                                               std::size_t n,
                                               ArenaVec<GridPending>& pending) {
  std::vector<std::size_t> offset(n + 1, 0);
  const auto home_of = [n](const HotJob& h) {
    return static_cast<std::size_t>(h.community < 0 ? 0 : h.community) % n;
  };
  for (std::size_t i = 0; i < store.size(); ++i) ++offset[home_of(store[i]) + 1];
  std::vector<std::size_t> counts(offset.begin() + 1, offset.end());
  for (std::size_t c = 0; c < n; ++c) offset[c + 1] += offset[c];
  pending.resize(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    const std::size_t home = home_of(store[i]);
    pending[offset[home]++] = GridPending{static_cast<std::uint32_t>(home),
                                          static_cast<std::uint32_t>(i)};
  }
  return counts;
}

void GridSim::submit_store(const JobStore& store) {
  if (ran_) throw std::logic_error("submit after run()");
  if (borrowed_ != nullptr || !store_.empty())
    throw std::logic_error("cannot mix submit_store() with prior submissions");
  borrowed_ = &store;
  const std::vector<std::size_t> counts =
      group_pending_by_home(store, clusters_.size(), pending_);
  for (std::size_t c = 0; c < clusters_.size(); ++c)
    clusters_[c]->reserve_submissions(counts[c]);
}

std::size_t GridSim::fallback_target(std::size_t target, int min_procs) const {
  if (min_procs <= clusters_[target]->processors()) return target;
  for (std::size_t c = 0; c < clusters_.size(); ++c)
    if (min_procs <= clusters_[c]->processors()) return c;
  throw std::invalid_argument("job wider than every cluster in the grid");
}

void schedule_cluster_volatility(Simulator& sim, OnlineCluster& cl,
                                 const VolatilityProfile& vol,
                                 std::uint64_t seed,
                                 std::size_t cluster_index) {
  if (vol.events <= 0 || vol.window <= 0.0) return;
  // One independent stream per cluster, keyed on the cluster index —
  // adding a cluster (or moving this one to another shard) never
  // perturbs the churn of the others.
  Rng rng(mix_seed(seed, cluster_index));
  OnlineCluster* target = &cl;
  const int total = cl.processors();
  const int floor =
      std::max(1, static_cast<int>(std::ceil(vol.floor_fraction * total)));
  struct Outage {
    Time down, up;
    int cap;
  };
  std::vector<Outage> outages;
  outages.reserve(static_cast<std::size_t>(vol.events));
  std::vector<Time> boundaries;
  for (int e = 0; e < vol.events; ++e) {
    Outage o;
    o.down = rng.uniform(0.0, vol.window);
    o.cap = static_cast<int>(rng.uniform_int(std::min(floor, total), total));
    o.up = o.down + rng.uniform(vol.outage_min, vol.outage_max);
    boundaries.push_back(o.down);
    boundaries.push_back(o.up);
    outages.push_back(o);
  }
  // Outages may overlap; the usable capacity at any instant is the
  // minimum over the active ones (a restore must not cancel another
  // outage still in progress).  Walk the boundary times and emit one
  // set_capacity per actual level change.
  std::sort(boundaries.begin(), boundaries.end());
  int prev = total;
  for (const Time t : boundaries) {
    int cap = total;
    for (const Outage& o : outages)
      if (o.down <= t && t < o.up) cap = std::min(cap, o.cap);
    if (cap == prev) continue;
    prev = cap;
    sim.at(t, [target, cap] { target->set_capacity(cap); });
  }
}

void GridSim::schedule_volatility() {
  for (std::size_t c = 0; c < clusters_.size(); ++c)
    schedule_cluster_volatility(sim_, *clusters_[c], opts_.volatility,
                                opts_.volatility_seed, c);
}

void GridSim::schedule_next_arrival() {
  if (route_cursor_ >= route_order_.size()) return;
  const Time t = effective_grid_release(
      jobs()[pending_[route_order_[route_cursor_]].index].release);
  sim_.at(t, [this] { pump_arrivals(); }, kGridArrivalPriority);
}

void GridSim::pump_arrivals() {
  LGS_PROF_ZONE("grid.arrival_pump");
  LGS_PROF_COUNT("grid.arrival_batches", 1);
  const Time now = sim_.now();
  while (route_cursor_ < route_order_.size() &&
         effective_grid_release(
             jobs()[pending_[route_order_[route_cursor_]].index].release) <=
             now)
    route(route_order_[route_cursor_++]);
  schedule_next_arrival();
}

void GridSim::route(std::size_t pending_index) {
  LGS_PROF_COUNT("grid.routes", 1);
  const Pending& p = pending_[pending_index];
  const JobStore& js = jobs();
  std::size_t target = p.home;
  switch (opts_.routing) {
    case GridRouting::kIsolated:
      break;
    case GridRouting::kThreshold:
    case GridRouting::kEconomic: {
      ExchangeOptions ex;
      ex.policy = to_exchange_policy(opts_.routing);
      ex.wait_threshold = opts_.wait_threshold;
      ex.migration_penalty = opts_.migration_penalty;
      // The exchange policies consume the fat interface: materialize a
      // transient Job (identical field values — from_ref rebuilds the
      // exact model) for the bidding round only.
      Job j = js.job(p.index);
      j.release = 0.0;
      LGS_PROF_COUNT("grid.exchange_bids", 1);
      target = exchange_target(clusters_, p.home, j, ex);
      break;
    }
    case GridRouting::kGlobalPlan:
      target = plan_[pending_index];
      break;
  }
  const HotJob& row = js[p.index];
  target = fallback_target(target, row.min_procs);
  if (target != p.home) {
    ++migrations_;
    LGS_PROF_COUNT("grid.migrations", 1);
  }
  // Hot 64-byte hand-off, release overridden to "now" (routing runs at
  // the release instant) — no fat Job on the replay path.
  HotJob h = row;
  h.release = 0.0;
  clusters_[target]->submit_local(h, js.tables());
}

GridSimResult GridSim::run(Time horizon) {
  LGS_PROF_ZONE("grid.run");
  if (ran_) throw std::logic_error("run() called twice");
  ran_ = true;

  // Omniscient baseline: place every submission with the heterogeneous
  // ECT list scheduler of grid/global, then follow that plan online.
  if (opts_.routing == GridRouting::kGlobalPlan) {
    plan_.resize(pending_.size());
    plan_global_targets(grid_, jobs(), pending_.data(), pending_.size(),
                        plan_.data());
  }

  // Stable sort: equal release times route in submission order, exactly
  // as the replaced per-job events did (their ids broke the tie).
  route_order_.resize(pending_.size());
  std::iota(route_order_.begin(), route_order_.end(), std::uint32_t{0});
  std::stable_sort(
      route_order_.begin(), route_order_.end(),
      [this](std::uint32_t a, std::uint32_t b) {
        return effective_grid_release(jobs()[pending_[a].index].release) <
               effective_grid_release(jobs()[pending_[b].index].release);
      });
  schedule_next_arrival();
  schedule_volatility();
  sim_.run(horizon);
  return aggregate_grid_result(clusters_, sim_.now(), migrations_,
                               server_.get());
}

void plan_global_targets(const LightGrid& grid, const JobStore& jobs,
                         const GridPending* pending, std::size_t n,
                         std::uint32_t* targets) {
  // The planner consumes the fat offline interface — materialize Jobs
  // for it (global-plan only; the decentralized routings stay hot).
  JobSet combined;
  combined.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Job j = jobs.job(pending[i].index);
    j.id = static_cast<JobId>(i);  // plan ids = pending indices
    combined.push_back(std::move(j));
  }
  const GlobalSchedule plan = global_ect_schedule(grid, combined);
  const auto cluster_index = [&grid](ClusterId id) {
    for (std::size_t c = 0; c < grid.clusters.size(); ++c)
      if (grid.clusters[c].id == id) return c;
    throw std::logic_error("global plan placed a job on an unknown cluster");
  };
  for (std::size_t i = 0; i < n; ++i) {
    const GlobalAssignment* a = plan.find(static_cast<JobId>(i));
    targets[i] = static_cast<std::uint32_t>(
        a != nullptr ? cluster_index(a->cluster) : pending[i].home);
  }
}

GridSimResult aggregate_grid_result(
    const std::vector<std::unique_ptr<OnlineCluster>>& clusters, Time horizon,
    long migrations, const CentralServer* server) {
  GridSimResult res;
  res.horizon = horizon;
  res.migrations = migrations;
  if (server != nullptr) {
    res.grid_runs_total = server->total_runs();
    res.grid_runs_completed = server->completed();
    res.grid_resubmissions = server->resubmissions();
  }

  double busy = 0.0, capacity = 0.0;
  double flow_sum = 0.0, wait_sum = 0.0, slow_sum = 0.0;
  long jobs_total = 0;
  // Communities are a handful of small ids: a flat vector with a linear
  // probe beats a node-based map across millions of records.
  std::vector<CommunityOutcome> by_community;
  const auto community_slot = [&by_community](int id) -> CommunityOutcome& {
    for (CommunityOutcome& com : by_community)
      if (com.community == id) return com;
    by_community.emplace_back();
    by_community.back().community = id;
    return by_community.back();
  };
  res.clusters.reserve(clusters.size());
  for (const auto& c : clusters) {
    GridClusterOutcome out;
    out.id = c->id();
    out.processors = c->processors();
    out.local_jobs = static_cast<long>(c->local_records().size());
    out.be = c->besteffort_stats();
    out.volatility = c->volatility_stats();
    double wait = 0.0, slow = 0.0;
    for (const LocalJobRecord& r : c->local_records()) {
      wait += r.wait();
      slow += r.slowdown();
      CommunityOutcome& com = community_slot(r.community);
      ++com.jobs;
      com.mean_wait += r.wait();
      com.mean_slowdown += r.slowdown();
      com.mean_flow += r.flow();
      flow_sum += r.flow();
      wait_sum += r.wait();
      slow_sum += r.slowdown();
      ++jobs_total;
    }
    const double n = std::max<double>(1.0, out.local_jobs);
    out.local_mean_wait = wait / n;
    out.local_mean_slowdown = slow / n;
    const double denom = c->processors() * std::max(res.horizon, kTimeEps);
    out.utilization_local = c->local_busy_integral() / denom;
    out.utilization_total = c->busy_integral() / denom;
    busy += c->busy_integral();
    capacity += static_cast<double>(c->processors()) * res.horizon;
    res.clusters.push_back(std::move(out));
  }
  // Ascending community id, as the map-based aggregation reported.
  std::sort(by_community.begin(), by_community.end(),
            [](const CommunityOutcome& a, const CommunityOutcome& b) {
              return a.community < b.community;
            });
  for (CommunityOutcome& com : by_community) {
    com.mean_wait /= std::max(1, com.jobs);
    com.mean_slowdown /= std::max(1, com.jobs);
    com.mean_flow /= std::max(1, com.jobs);
  }
  res.communities = std::move(by_community);
  res.jobs_completed = jobs_total;
  res.global_utilization = capacity > 0 ? busy / capacity : 0.0;
  res.mean_flow = jobs_total > 0 ? flow_sum / jobs_total : 0.0;
  res.mean_wait = jobs_total > 0 ? wait_sum / jobs_total : 0.0;
  res.mean_slowdown = jobs_total > 0 ? slow_sum / jobs_total : 0.0;
  return res;
}

std::vector<std::string> validate_grid_result(const GridSim& sim,
                                              const GridSimResult& result) {
  return validate_grid_clusters(sim.clusters(), result);
}

std::vector<std::string> validate_grid_clusters(
    const std::vector<std::unique_ptr<OnlineCluster>>& clusters,
    const GridSimResult& result) {
  std::vector<std::string> violations;
  const auto flag = [&](const std::string& what) {
    violations.push_back(what);
  };
  long records_total = 0;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const OnlineCluster& c = *clusters[i];
    const std::string tag = "cluster " + std::to_string(i) + ": ";
    if (c.queued_jobs() != 0)
      flag(tag + std::to_string(c.queued_jobs()) + " jobs still queued");
    if (c.running_local_jobs() != 0)
      flag(tag + std::to_string(c.running_local_jobs()) +
           " local jobs still running");
    if (c.running_besteffort_jobs() != 0)
      flag(tag + std::to_string(c.running_besteffort_jobs()) +
           " best-effort runs still running");
    for (const LocalJobRecord& r : c.local_records()) {
      if (r.start + kTimeEps < r.submit)
        flag(tag + "job " + std::to_string(r.id) + " started before submit");
      if (r.finish + kTimeEps < r.start)
        flag(tag + "job " + std::to_string(r.id) + " finished before start");
      if (r.finish > result.horizon + kTimeEps)
        flag(tag + "job " + std::to_string(r.id) + " finished past horizon");
    }
    records_total += static_cast<long>(c.local_records().size());
    const BestEffortStats& be = c.besteffort_stats();
    if (be.started != be.completed + be.killed)
      flag(tag + "best-effort accounting leak (started != done + killed)");
  }
  for (const GridClusterOutcome& out : result.clusters) {
    if (out.utilization_total > 1.0 + 1e-6)
      flag("cluster " + std::to_string(out.id) + ": utilization " +
           std::to_string(out.utilization_total) + " > 1");
    if (out.utilization_local > out.utilization_total + 1e-6)
      flag("cluster " + std::to_string(out.id) +
           ": local utilization above total");
  }
  if (records_total != result.jobs_completed)
    flag("record count does not match jobs_completed");
  if (result.grid_runs_completed != result.grid_runs_total)
    flag("grid campaign incomplete: " +
         std::to_string(result.grid_runs_completed) + "/" +
         std::to_string(result.grid_runs_total) + " runs");
  return violations;
}

}  // namespace lgs
