#include "sim/grid_sim.h"

#include <algorithm>
#include <climits>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "core/checkpoint.h"
#include "core/profiler.h"
#include "core/rng.h"
#include "grid/global.h"

namespace lgs {

const char* to_string(GridRouting r) {
  switch (r) {
    case GridRouting::kIsolated:
      return "isolated";
    case GridRouting::kThreshold:
      return "threshold";
    case GridRouting::kEconomic:
      return "economic";
    case GridRouting::kGlobalPlan:
      return "global-plan";
  }
  return "?";
}

ExchangePolicy to_exchange_policy(GridRouting r) {
  switch (r) {
    case GridRouting::kIsolated:
      return ExchangePolicy::kIsolated;
    case GridRouting::kThreshold:
      return ExchangePolicy::kThreshold;
    case GridRouting::kEconomic:
      return ExchangePolicy::kEconomic;
    case GridRouting::kGlobalPlan:
      break;
  }
  throw std::invalid_argument("global-plan has no exchange policy");
}

LightGrid make_skewed_grid(int n, int base_procs, double skew) {
  if (n < 1) throw std::invalid_argument("grid needs at least one cluster");
  if (base_procs < 1) throw std::invalid_argument("base_procs must be >= 1");
  if (skew < 1.0) throw std::invalid_argument("skew must be >= 1");
  static const Interconnect kNets[] = {Interconnect::kMyrinet,
                                       Interconnect::kGigabitEthernet,
                                       Interconnect::kFastEthernet};
  LightGrid g;
  g.name = "skewed-" + std::to_string(n) + "x" + std::to_string(base_procs);
  for (int i = 0; i < n; ++i) {
    const double frac = n > 1 ? static_cast<double>(i) / (n - 1) : 0.0;
    Cluster c;
    c.id = static_cast<ClusterId>(i);
    c.name = "cluster-" + std::to_string(i);
    c.nodes = std::max(
        1, static_cast<int>(std::lround(base_procs * std::pow(skew, -frac))));
    c.cpus_per_node = 1;
    c.speed = std::pow(skew, frac / 2.0);
    c.net = kNets[i % 3];
    c.owner_community = i % 4;
    g.clusters.push_back(std::move(c));
  }
  return g;
}

std::vector<JobSet> split_by_community(JobSet jobs, std::size_t n) {
  if (n == 0) throw std::invalid_argument("cannot split across 0 clusters");
  std::vector<JobSet> out(n);
  for (Job& j : jobs) {
    const std::size_t home =
        static_cast<std::size_t>(j.community < 0 ? 0 : j.community) % n;
    out[home].push_back(std::move(j));
  }
  return out;
}

GridSim::GridSim(const LightGrid& grid, const GridSimOptions& opts,
                 Arena* arena)
    : grid_(grid),
      opts_(opts),
      arena_(arena != nullptr ? *arena : owned_arena_),
      sim_(ArenaRef(arena_)),
      store_(ArenaRef(arena_)),
      pending_(ArenaAllocator<Pending>(ArenaRef(arena_))),
      plan_(ArenaAllocator<std::uint32_t>(ArenaRef(arena_))),
      route_order_(ArenaAllocator<std::uint32_t>(ArenaRef(arena_))) {
  if (grid_.clusters.empty())
    throw std::invalid_argument("grid without clusters");
  for (const Cluster& c : grid_.clusters)
    clusters_.push_back(std::make_unique<OnlineCluster>(
        sim_, c, opts_.cluster, ArenaRef(arena_)));
  if (!opts_.bags.empty()) {
    server_ = std::make_unique<CentralServer>(opts_.bags);
    for (auto& c : clusters_)
      c->set_besteffort_source(server_->make_source());
  }
}

void GridSim::submit(std::size_t home, const Job& j) {
  if (ran_) throw std::logic_error("submit after run()");
  if (borrowed_ != nullptr)
    throw std::logic_error("cannot mix submit() with submit_store()");
  if (home >= clusters_.size())
    throw std::invalid_argument("home cluster out of range");
  store_.append(j);
  pending_.push_back(Pending{static_cast<std::uint32_t>(home),
                             static_cast<std::uint32_t>(store_.size() - 1)});
}

void GridSim::submit_workloads(const std::vector<JobSet>& per_cluster) {
  if (per_cluster.size() > clusters_.size())
    throw std::invalid_argument("more workloads than clusters");
  std::size_t total = 0;
  for (const JobSet& jobs : per_cluster) total += jobs.size();
  pending_.reserve(pending_.size() + total);
  store_.reserve(store_.size() + total);
  for (std::size_t i = 0; i < per_cluster.size(); ++i) {
    // Routing may migrate jobs elsewhere, but the home counts are the
    // right order of magnitude to pre-size each cluster's bookkeeping.
    clusters_[i]->reserve_submissions(per_cluster[i].size());
    for (const Job& j : per_cluster[i]) submit(i, j);
  }
}

std::vector<std::size_t> group_pending_by_home(const JobStore& store,
                                               std::size_t n,
                                               ArenaVec<GridPending>& pending) {
  std::vector<std::size_t> offset(n + 1, 0);
  const auto home_of = [n](const HotJob& h) {
    return static_cast<std::size_t>(h.community < 0 ? 0 : h.community) % n;
  };
  for (std::size_t i = 0; i < store.size(); ++i) ++offset[home_of(store[i]) + 1];
  std::vector<std::size_t> counts(offset.begin() + 1, offset.end());
  for (std::size_t c = 0; c < n; ++c) offset[c + 1] += offset[c];
  pending.resize(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    const std::size_t home = home_of(store[i]);
    pending[offset[home]++] = GridPending{static_cast<std::uint32_t>(home),
                                          static_cast<std::uint32_t>(i)};
  }
  return counts;
}

void GridSim::submit_store(const JobStore& store) {
  if (ran_) throw std::logic_error("submit after run()");
  if (borrowed_ != nullptr || !store_.empty())
    throw std::logic_error("cannot mix submit_store() with prior submissions");
  borrowed_ = &store;
  const std::vector<std::size_t> counts =
      group_pending_by_home(store, clusters_.size(), pending_);
  for (std::size_t c = 0; c < clusters_.size(); ++c)
    clusters_[c]->reserve_submissions(counts[c]);
}

std::size_t GridSim::fallback_target(std::size_t target, int min_procs) const {
  if (min_procs <= clusters_[target]->processors()) return target;
  for (std::size_t c = 0; c < clusters_.size(); ++c)
    if (min_procs <= clusters_[c]->processors()) return c;
  throw std::invalid_argument("job wider than every cluster in the grid");
}

void schedule_cluster_volatility(Simulator& sim, OnlineCluster& cl,
                                 const VolatilityProfile& vol,
                                 std::uint64_t seed,
                                 std::size_t cluster_index,
                                 std::vector<GridCapacityEvent>* out) {
  if (vol.events <= 0 || vol.window <= 0.0) return;
  // One independent stream per cluster, keyed on the cluster index —
  // adding a cluster (or moving this one to another shard) never
  // perturbs the churn of the others.
  Rng rng(mix_seed(seed, cluster_index));
  OnlineCluster* target = &cl;
  const int total = cl.processors();
  const int floor =
      std::max(1, static_cast<int>(std::ceil(vol.floor_fraction * total)));
  struct Outage {
    Time down, up;
    int cap;
  };
  std::vector<Outage> outages;
  outages.reserve(static_cast<std::size_t>(vol.events));
  std::vector<Time> boundaries;
  for (int e = 0; e < vol.events; ++e) {
    Outage o;
    o.down = rng.uniform(0.0, vol.window);
    o.cap = static_cast<int>(rng.uniform_int(std::min(floor, total), total));
    o.up = o.down + rng.uniform(vol.outage_min, vol.outage_max);
    boundaries.push_back(o.down);
    boundaries.push_back(o.up);
    outages.push_back(o);
  }
  // Outages may overlap; the usable capacity at any instant is the
  // minimum over the active ones (a restore must not cancel another
  // outage still in progress).  Walk the boundary times and emit one
  // set_capacity per actual level change.
  std::sort(boundaries.begin(), boundaries.end());
  int prev = total;
  for (const Time t : boundaries) {
    int cap = total;
    for (const Outage& o : outages)
      if (o.down <= t && t < o.up) cap = std::min(cap, o.cap);
    if (cap == prev) continue;
    prev = cap;
    const EventId id = sim.at(t, [target, cap] { target->set_capacity(cap); });
    if (out != nullptr)
      out->push_back(GridCapacityEvent{
          t, id, static_cast<std::uint32_t>(cluster_index), cap});
  }
}

void GridSim::schedule_volatility() {
  for (std::size_t c = 0; c < clusters_.size(); ++c)
    schedule_cluster_volatility(sim_, *clusters_[c], opts_.volatility,
                                opts_.volatility_seed, c, &capacity_events_);
}

void GridSim::schedule_next_arrival() {
  if (route_cursor_ >= route_order_.size()) return;
  const Time t = effective_grid_release(
      jobs()[pending_[route_order_[route_cursor_]].index].release);
  pump_time_ = t;
  pump_event_ = sim_.at(t, [this] { pump_arrivals(); }, kGridArrivalPriority);
}

void GridSim::pump_arrivals() {
  LGS_PROF_ZONE("grid.arrival_pump");
  LGS_PROF_COUNT("grid.arrival_batches", 1);
  const Time now = sim_.now();
  while (route_cursor_ < route_order_.size() &&
         effective_grid_release(
             jobs()[pending_[route_order_[route_cursor_]].index].release) <=
             now)
    route(route_order_[route_cursor_++]);
  schedule_next_arrival();
}

void GridSim::route(std::size_t pending_index) {
  LGS_PROF_COUNT("grid.routes", 1);
  const Pending& p = pending_[pending_index];
  const JobStore& js = jobs();
  std::size_t target = p.home;
  switch (opts_.routing) {
    case GridRouting::kIsolated:
      break;
    case GridRouting::kThreshold:
    case GridRouting::kEconomic: {
      ExchangeOptions ex;
      ex.policy = to_exchange_policy(opts_.routing);
      ex.wait_threshold = opts_.wait_threshold;
      ex.migration_penalty = opts_.migration_penalty;
      // The exchange policies consume the fat interface: materialize a
      // transient Job (identical field values — from_ref rebuilds the
      // exact model) for the bidding round only.
      Job j = js.job(p.index);
      j.release = 0.0;
      LGS_PROF_COUNT("grid.exchange_bids", 1);
      target = exchange_target(clusters_, p.home, j, ex);
      break;
    }
    case GridRouting::kGlobalPlan:
      target = plan_[pending_index];
      break;
  }
  const HotJob& row = js[p.index];
  target = fallback_target(target, row.min_procs);
  if (target != p.home) {
    ++migrations_;
    LGS_PROF_COUNT("grid.migrations", 1);
  }
  // Hot 64-byte hand-off, release overridden to "now" (routing runs at
  // the release instant) — no fat Job on the replay path.
  HotJob h = row;
  h.release = 0.0;
  clusters_[target]->submit_local(h, js.tables());
}

void GridSim::prepare_run() {
  if (ran_) throw std::logic_error("run() called twice");
  if (streaming_) throw std::logic_error("run() on a streaming engine");
  ran_ = true;

  // Omniscient baseline: place every submission with the heterogeneous
  // ECT list scheduler of grid/global, then follow that plan online.
  if (opts_.routing == GridRouting::kGlobalPlan) {
    plan_.resize(pending_.size());
    plan_global_targets(grid_, jobs(), pending_.data(), pending_.size(),
                        plan_.data());
  }

  // Stable sort: equal release times route in submission order, exactly
  // as the replaced per-job events did (their ids broke the tie).
  route_order_.resize(pending_.size());
  std::iota(route_order_.begin(), route_order_.end(), std::uint32_t{0});
  std::stable_sort(
      route_order_.begin(), route_order_.end(),
      [this](std::uint32_t a, std::uint32_t b) {
        return effective_grid_release(jobs()[pending_[a].index].release) <
               effective_grid_release(jobs()[pending_[b].index].release);
      });
  schedule_next_arrival();
  schedule_volatility();
}

GridSimResult GridSim::run(Time horizon) {
  LGS_PROF_ZONE("grid.run");
  prepare_run();
  sim_.run(horizon);
  return aggregate_grid_result(clusters_, sim_.now(), migrations_,
                               server_.get());
}

void GridSim::run_to(Time t) {
  LGS_PROF_ZONE("grid.run");
  prepare_run();
  // INT_MIN boundary: every event strictly before `t` executes, events
  // AT `t` (any priority) stay pending — a quiescent point between
  // instants, where checkpoint() is exact.
  sim_.run_until(t, INT_MIN);
}

GridSimResult GridSim::resume(Time horizon) {
  LGS_PROF_ZONE("grid.run");
  if (!ran_ || streaming_)
    throw std::logic_error("resume() needs a run_to()/restored batch replay");
  sim_.run(horizon);
  return aggregate_grid_result(clusters_, sim_.now(), migrations_,
                               server_.get());
}

// ---------------------------------------------------------------------------
// Streaming service mode.
// ---------------------------------------------------------------------------

void GridSim::begin_streaming() {
  if (ran_) throw std::logic_error("begin_streaming() after run()");
  if (streaming_) throw std::logic_error("begin_streaming() called twice");
  if (borrowed_ != nullptr || !store_.empty())
    throw std::logic_error("begin_streaming() after batch submissions");
  if (opts_.routing == GridRouting::kGlobalPlan)
    throw std::invalid_argument(
        "global-plan routing needs the whole trace up front and cannot "
        "stream");
  streaming_ = true;
  schedule_volatility();
}

void GridSim::ingest(const HotJob& h, const TablePool& tables,
                     std::size_t home) {
  if (!streaming_) throw std::logic_error("ingest() before begin_streaming()");
  if (home >= clusters_.size())
    throw std::invalid_argument("home cluster out of range");
  LGS_PROF_COUNT("grid.stream_ingests", 1);
  // Copy the row into the engine-owned store (table refs re-interned, so
  // the producer's batch buffer can be recycled immediately).
  HotJob local = h;
  if (local.exec_kind == ExecKind::kTable)
    local.exec_c = store_.mutable_tables().intern(tables.data(h.exec_c),
                                                  tables.len(h.exec_c));
  store_.append_raw(local);
  const std::uint64_t pending_index = pending_.size();
  pending_.push_back(Pending{static_cast<std::uint32_t>(home),
                             static_cast<std::uint32_t>(store_.size() - 1)});
  // Per-job route event at the arrival instant.  Same (time, priority)
  // key as the batch pump, and ties among routes break by insertion id =
  // ingestion order — so a release-ordered stream replays the batch
  // run's exact routing sequence.
  const Time t = std::max(sim_.now(),
                          effective_grid_release(local.release));
  const std::size_t idx = static_cast<std::size_t>(pending_index);
  const EventId id =
      sim_.at(t, [this, idx] { route(idx); }, kGridArrivalPriority);
  route_events_.push_back(RouteEvent{t, id, pending_index});
}

void GridSim::advance_to(Time t) {
  if (!streaming_)
    throw std::logic_error("advance_to() before begin_streaming()");
  // Stop at (t, arrival-priority): completions and churn strictly before
  // `t` execute, but route events AT `t` stay pending — jobs with
  // release == t ingested after this call still route ahead of
  // same-instant completions, exactly like the batch pump's position in
  // the tie-break order.
  sim_.run_until(t, kGridArrivalPriority);
}

GridSimResult GridSim::finish_streaming(Time horizon) {
  if (!streaming_)
    throw std::logic_error("finish_streaming() before begin_streaming()");
  LGS_PROF_ZONE("grid.run");
  sim_.run(horizon);
  return aggregate_grid_result(clusters_, sim_.now(), migrations_,
                               server_.get());
}

// ---------------------------------------------------------------------------
// Checkpoint/restore.
// ---------------------------------------------------------------------------

std::uint64_t GridSim::config_digest() const {
  // Everything that shapes the replay must match between the
  // snapshotting and the restoring engine; the digest is the cheap
  // whole-config equality proxy embedded in every snapshot.
  CheckpointWriter w;
  w.u64(grid_.clusters.size());
  for (const Cluster& c : grid_.clusters) {
    w.i32(c.id);
    w.i32(c.nodes);
    w.i32(c.cpus_per_node);
    w.f64(c.speed);
    w.i32(c.owner_community);
  }
  w.u8(static_cast<std::uint8_t>(opts_.routing));
  w.f64(opts_.wait_threshold);
  w.f64(opts_.migration_penalty);
  w.str(opts_.cluster.policy);
  w.u8(static_cast<std::uint8_t>(opts_.cluster.kill_policy));
  w.u64(opts_.bags.size());
  for (const ParametricBag& bag : opts_.bags) {
    w.i32(bag.runs);
    w.f64(bag.run_time);
  }
  w.i32(opts_.volatility.events);
  w.f64(opts_.volatility.window);
  w.f64(opts_.volatility.floor_fraction);
  w.f64(opts_.volatility.outage_min);
  w.f64(opts_.volatility.outage_max);
  w.u64(opts_.volatility_seed);
  const std::vector<unsigned char> buf = w.finish();
  return checkpoint_fnv1a(kCheckpointFnvBasis, buf.data(), buf.size());
}

std::vector<unsigned char> GridSim::checkpoint() const {
  LGS_PROF_ZONE("grid.checkpoint");
  if (!ran_ && !streaming_)
    throw std::logic_error("checkpoint() before run_to()/begin_streaming()");

  // Account for the ENTIRE pending-event set before writing anything: a
  // pending event this engine cannot re-create would silently change
  // the resumed replay, which is exactly what bit-identity forbids.
  std::unordered_set<EventId> pending;
  for (const Simulator::PendingEvent& e : sim_.pending_events())
    pending.insert(e.id);
  std::vector<EventId> expected;
  expected.reserve(pending.size());
  for (const auto& c : clusters_) c->append_expected_event_ids(pending, expected);
  const bool pump_pending =
      pump_event_ != 0 && pending.count(pump_event_) != 0;
  if (pump_pending) expected.push_back(pump_event_);
  for (const GridCapacityEvent& e : capacity_events_)
    if (pending.count(e.id) != 0) expected.push_back(e.id);
  for (const RouteEvent& e : route_events_)
    if (pending.count(e.id) != 0) expected.push_back(e.id);
  std::sort(expected.begin(), expected.end());
  if (std::adjacent_find(expected.begin(), expected.end()) != expected.end())
    throw CheckpointError("duplicate pending event id in the accounting");
  if (expected.size() != pending.size())
    throw CheckpointError(
        "snapshot cannot account for every pending event (" +
        std::to_string(pending.size()) + " pending, " +
        std::to_string(expected.size()) + " accounted)");
  for (const EventId id : expected)
    if (pending.count(id) == 0)
      throw CheckpointError("engine expects an event that is not pending");

  CheckpointWriter w;
  w.str("gridsim");
  w.u64(config_digest());
  w.u8(streaming_ ? 1 : 0);
  w.u8(ran_ ? 1 : 0);
  w.f64(sim_.now());
  w.u64(sim_.next_event_id());
  w.u64(sim_.executed());

  // The active trace (borrowed or owned) is serialized wholesale either
  // way; restore always lands it in the engine-owned store.
  save_job_store(w, jobs());

  w.u64(pending_.size());
  for (const Pending& p : pending_) {
    w.u32(p.home);
    w.u32(p.index);
  }
  w.u64(plan_.size());
  for (const std::uint32_t t : plan_) w.u32(t);
  w.u64(route_order_.size());
  for (const std::uint32_t i : route_order_) w.u32(i);
  w.u64(route_cursor_);
  w.i64(migrations_);

  w.u8(pump_pending ? 1 : 0);
  w.u64(pump_event_);
  w.f64(pump_time_);

  std::uint64_t live_vol = 0;
  for (const GridCapacityEvent& e : capacity_events_)
    if (pending.count(e.id) != 0) ++live_vol;
  w.u64(live_vol);
  for (const GridCapacityEvent& e : capacity_events_)
    if (pending.count(e.id) != 0) {
      w.f64(e.t);
      w.u64(e.id);
      w.u32(e.cluster);
      w.i32(e.cap);
    }

  std::uint64_t live_routes = 0;
  for (const RouteEvent& e : route_events_)
    if (pending.count(e.id) != 0) ++live_routes;
  w.u64(live_routes);
  for (const RouteEvent& e : route_events_)
    if (pending.count(e.id) != 0) {
      w.f64(e.t);
      w.u64(e.id);
      w.u64(e.pending_index);
    }

  w.u8(server_ != nullptr ? 1 : 0);
  if (server_ != nullptr) server_->save_checkpoint(w);

  for (const auto& c : clusters_) c->save_checkpoint(w, pending);
  return w.finish();
}

void GridSim::restore(const std::vector<unsigned char>& blob) {
  LGS_PROF_ZONE("grid.restore");
  if (ran_ || streaming_ || borrowed_ != nullptr || !store_.empty())
    throw std::logic_error("restore() needs a freshly constructed engine");

  CheckpointReader r(blob);
  if (r.str() != "gridsim")
    throw CheckpointError("snapshot was written by a different engine");
  if (r.u64() != config_digest())
    throw CheckpointError(
        "snapshot config digest mismatch (different grid or options)");
  streaming_ = r.u8() != 0;
  ran_ = r.u8() != 0;
  const Time now = r.f64();
  const EventId next_id = r.u64();
  const std::uint64_t executed = r.u64();

  // Drop the fresh-construction events (the best-effort bootstraps) and
  // pin clock + id cursor; every pending event is re-created below under
  // its original id.
  sim_.reset_for_restore(now, next_id, executed);

  load_job_store(r, store_);
  borrowed_ = nullptr;

  pending_.clear();
  const std::uint64_t n_pending = r.u64();
  pending_.reserve(n_pending);
  for (std::uint64_t i = 0; i < n_pending; ++i) {
    const std::uint32_t home = r.u32();
    const std::uint32_t index = r.u32();
    if (home >= clusters_.size() || index >= store_.size())
      throw CheckpointError("pending table entry out of range");
    pending_.push_back(Pending{home, index});
  }
  plan_.clear();
  const std::uint64_t n_plan = r.u64();
  plan_.reserve(n_plan);
  for (std::uint64_t i = 0; i < n_plan; ++i) plan_.push_back(r.u32());
  route_order_.clear();
  const std::uint64_t n_order = r.u64();
  route_order_.reserve(n_order);
  for (std::uint64_t i = 0; i < n_order; ++i) route_order_.push_back(r.u32());
  route_cursor_ = static_cast<std::size_t>(r.u64());
  migrations_ = static_cast<long>(r.i64());

  const bool pump_pending = r.u8() != 0;
  pump_event_ = r.u64();
  pump_time_ = r.f64();
  if (pump_pending)
    sim_.restore_event(pump_time_, kGridArrivalPriority, pump_event_,
                       [this] { pump_arrivals(); });

  capacity_events_.clear();
  const std::uint64_t n_vol = r.u64();
  capacity_events_.reserve(n_vol);
  for (std::uint64_t i = 0; i < n_vol; ++i) {
    GridCapacityEvent e;
    e.t = r.f64();
    e.id = r.u64();
    e.cluster = r.u32();
    e.cap = r.i32();
    if (e.cluster >= clusters_.size())
      throw CheckpointError("volatility event references unknown cluster");
    capacity_events_.push_back(e);
    OnlineCluster* target = clusters_[e.cluster].get();
    const int cap = e.cap;
    sim_.restore_event(e.t, /*priority=*/0, e.id,
                       [target, cap] { target->set_capacity(cap); });
  }

  route_events_.clear();
  const std::uint64_t n_routes = r.u64();
  route_events_.reserve(n_routes);
  for (std::uint64_t i = 0; i < n_routes; ++i) {
    RouteEvent e;
    e.t = r.f64();
    e.id = r.u64();
    e.pending_index = r.u64();
    if (e.pending_index >= pending_.size())
      throw CheckpointError("route event references unknown pending entry");
    route_events_.push_back(e);
    const std::size_t idx = static_cast<std::size_t>(e.pending_index);
    sim_.restore_event(e.t, kGridArrivalPriority, e.id,
                       [this, idx] { route(idx); });
  }

  const bool has_server = r.u8() != 0;
  if (has_server != (server_ != nullptr))
    throw CheckpointError("snapshot/engine disagree on the central server");
  if (server_ != nullptr) server_->restore_checkpoint(r);

  for (auto& c : clusters_) c->restore_checkpoint(r);
  if (!r.exhausted())
    throw CheckpointError("trailing bytes after the last engine section");
}

void plan_global_targets(const LightGrid& grid, const JobStore& jobs,
                         const GridPending* pending, std::size_t n,
                         std::uint32_t* targets) {
  // The planner consumes the fat offline interface — materialize Jobs
  // for it (global-plan only; the decentralized routings stay hot).
  JobSet combined;
  combined.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Job j = jobs.job(pending[i].index);
    j.id = static_cast<JobId>(i);  // plan ids = pending indices
    combined.push_back(std::move(j));
  }
  const GlobalSchedule plan = global_ect_schedule(grid, combined);
  const auto cluster_index = [&grid](ClusterId id) {
    for (std::size_t c = 0; c < grid.clusters.size(); ++c)
      if (grid.clusters[c].id == id) return c;
    throw std::logic_error("global plan placed a job on an unknown cluster");
  };
  for (std::size_t i = 0; i < n; ++i) {
    const GlobalAssignment* a = plan.find(static_cast<JobId>(i));
    targets[i] = static_cast<std::uint32_t>(
        a != nullptr ? cluster_index(a->cluster) : pending[i].home);
  }
}

GridSimResult aggregate_grid_result(
    const std::vector<std::unique_ptr<OnlineCluster>>& clusters, Time horizon,
    long migrations, const CentralServer* server) {
  GridSimResult res;
  res.horizon = horizon;
  res.migrations = migrations;
  if (server != nullptr) {
    res.grid_runs_total = server->total_runs();
    res.grid_runs_completed = server->completed();
    res.grid_resubmissions = server->resubmissions();
  }

  double busy = 0.0, capacity = 0.0;
  double flow_sum = 0.0, wait_sum = 0.0, slow_sum = 0.0;
  long jobs_total = 0;
  // Communities are a handful of small ids: a flat vector with a linear
  // probe beats a node-based map across millions of records.
  std::vector<CommunityOutcome> by_community;
  const auto community_slot = [&by_community](int id) -> CommunityOutcome& {
    for (CommunityOutcome& com : by_community)
      if (com.community == id) return com;
    by_community.emplace_back();
    by_community.back().community = id;
    return by_community.back();
  };
  res.clusters.reserve(clusters.size());
  for (const auto& c : clusters) {
    GridClusterOutcome out;
    out.id = c->id();
    out.processors = c->processors();
    out.local_jobs = static_cast<long>(c->local_records().size());
    out.be = c->besteffort_stats();
    out.volatility = c->volatility_stats();
    double wait = 0.0, slow = 0.0;
    for (const LocalJobRecord& r : c->local_records()) {
      wait += r.wait();
      slow += r.slowdown();
      CommunityOutcome& com = community_slot(r.community);
      ++com.jobs;
      com.mean_wait += r.wait();
      com.mean_slowdown += r.slowdown();
      com.mean_flow += r.flow();
      flow_sum += r.flow();
      wait_sum += r.wait();
      slow_sum += r.slowdown();
      ++jobs_total;
    }
    const double n = std::max<double>(1.0, out.local_jobs);
    out.local_mean_wait = wait / n;
    out.local_mean_slowdown = slow / n;
    const double denom = c->processors() * std::max(res.horizon, kTimeEps);
    out.utilization_local = c->local_busy_integral() / denom;
    out.utilization_total = c->busy_integral() / denom;
    busy += c->busy_integral();
    capacity += static_cast<double>(c->processors()) * res.horizon;
    res.clusters.push_back(std::move(out));
  }
  // Ascending community id, as the map-based aggregation reported.
  std::sort(by_community.begin(), by_community.end(),
            [](const CommunityOutcome& a, const CommunityOutcome& b) {
              return a.community < b.community;
            });
  for (CommunityOutcome& com : by_community) {
    com.mean_wait /= std::max(1, com.jobs);
    com.mean_slowdown /= std::max(1, com.jobs);
    com.mean_flow /= std::max(1, com.jobs);
  }
  res.communities = std::move(by_community);
  res.jobs_completed = jobs_total;
  res.global_utilization = capacity > 0 ? busy / capacity : 0.0;
  res.mean_flow = jobs_total > 0 ? flow_sum / jobs_total : 0.0;
  res.mean_wait = jobs_total > 0 ? wait_sum / jobs_total : 0.0;
  res.mean_slowdown = jobs_total > 0 ? slow_sum / jobs_total : 0.0;
  return res;
}

std::vector<std::string> validate_grid_result(const GridSim& sim,
                                              const GridSimResult& result) {
  return validate_grid_clusters(sim.clusters(), result);
}

std::vector<std::string> validate_grid_clusters(
    const std::vector<std::unique_ptr<OnlineCluster>>& clusters,
    const GridSimResult& result) {
  std::vector<std::string> violations;
  const auto flag = [&](const std::string& what) {
    violations.push_back(what);
  };
  long records_total = 0;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    const OnlineCluster& c = *clusters[i];
    const std::string tag = "cluster " + std::to_string(i) + ": ";
    if (c.queued_jobs() != 0)
      flag(tag + std::to_string(c.queued_jobs()) + " jobs still queued");
    if (c.running_local_jobs() != 0)
      flag(tag + std::to_string(c.running_local_jobs()) +
           " local jobs still running");
    if (c.running_besteffort_jobs() != 0)
      flag(tag + std::to_string(c.running_besteffort_jobs()) +
           " best-effort runs still running");
    for (const LocalJobRecord& r : c.local_records()) {
      if (r.start + kTimeEps < r.submit)
        flag(tag + "job " + std::to_string(r.id) + " started before submit");
      if (r.finish + kTimeEps < r.start)
        flag(tag + "job " + std::to_string(r.id) + " finished before start");
      if (r.finish > result.horizon + kTimeEps)
        flag(tag + "job " + std::to_string(r.id) + " finished past horizon");
    }
    records_total += static_cast<long>(c.local_records().size());
    const BestEffortStats& be = c.besteffort_stats();
    if (be.started != be.completed + be.killed)
      flag(tag + "best-effort accounting leak (started != done + killed)");
  }
  for (const GridClusterOutcome& out : result.clusters) {
    if (out.utilization_total > 1.0 + 1e-6)
      flag("cluster " + std::to_string(out.id) + ": utilization " +
           std::to_string(out.utilization_total) + " > 1");
    if (out.utilization_local > out.utilization_total + 1e-6)
      flag("cluster " + std::to_string(out.id) +
           ": local utilization above total");
  }
  if (records_total != result.jobs_completed)
    flag("record count does not match jobs_completed");
  if (result.grid_runs_completed != result.grid_runs_total)
    flag("grid campaign incomplete: " +
         std::to_string(result.grid_runs_completed) + "/" +
         std::to_string(result.grid_runs_total) + " runs");
  return violations;
}

}  // namespace lgs
