// On-line single-cluster engine on top of the DES kernel.
//
// Models one cluster of a light grid under the paper's submission rules
// (§1.2): local jobs arrive in a priority file and are dispatched by a
// pluggable *queue policy* (policy/registry.h) — FCFS, EASY backfilling,
// conservative backfilling, or any batch policy through the §4.2 batch
// transformation adapter.  For the centralized grid of §5.2, idle
// processors are filled with killable *best-effort* runs drawn from an
// external source.  A local job that needs processors currently held by
// best-effort runs kills them; the source is notified so it can resubmit.
// Memory: construct with an ArenaRef to place all per-replay growth —
// the job slab, records, queue, running sets — in a replay arena (see
// docs/ARCHITECTURE.md "Memory model & allocation lifetimes").  The
// engine stores submissions as 64-byte HotJob rows with a private
// TablePool for tabulated models, never as fat Jobs.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/arena.h"
#include "core/job.h"
#include "core/job_store.h"
#include "platform/platform.h"
#include "policy/registry.h"
#include "sim/simulator.h"

namespace lgs {

class CheckpointReader;
class CheckpointWriter;

/// Completion record of one local job.
struct LocalJobRecord {
  JobId id = kInvalidJob;
  int community = 0;
  Time submit = 0.0;
  Time start = 0.0;
  Time finish = 0.0;
  int procs = 1;
  double best_duration = 0.0;  ///< duration used for slowdown normalization

  double wait() const { return start - submit; }
  double flow() const { return finish - submit; }
  double slowdown() const { return flow() / best_duration; }
};

/// Best-effort accounting for one cluster.
struct BestEffortStats {
  long started = 0;
  long completed = 0;
  long killed = 0;
  double wasted_time = 0.0;     ///< processor-seconds lost to kills
  double completed_time = 0.0;  ///< processor-seconds of useful grid work
};

/// Node-volatility accounting (§1: "some nodes can appear or disappear").
struct VolatilityStats {
  long capacity_changes = 0;
  long local_preemptions = 0;   ///< local jobs evicted by node loss
  double local_wasted = 0.0;    ///< processor-seconds of lost local work
};

/// Source of best-effort runs (the central server of §5.2).
///
/// `request(max_runs)` returns durations (at unit speed) for up to
/// max_runs runs to start now; `on_kill(duration)` hands a killed run back
/// for resubmission; `on_done()` reports one completed run.
struct BestEffortSource {
  std::function<std::vector<Time>(int)> request;
  std::function<void(Time)> on_kill;
  std::function<void()> on_done;
};

class OnlineCluster {
 public:
  /// Kill-selection policy when a local job needs best-effort processors
  /// (DESIGN.md ablation ✧6).
  enum class KillPolicy { kYoungestFirst, kOldestFirst, kLongestRemaining };

  struct Options {
    /// Registry name (policy/registry.h) of the queue policy driving
    /// dispatch.  Any registered policy runs on-line: "fcfs-list" and
    /// "easy-backfill" are the classical submission systems; batch and
    /// shelf policies run through the §4.2 batch adapter.
    std::string policy = "fcfs-list";
    KillPolicy kill_policy = KillPolicy::kYoungestFirst;
  };

  /// `arena` (optional) hosts every per-replay container; detached, the
  /// engine allocates from the heap as before.
  OnlineCluster(Simulator& sim, const Cluster& desc, Options opts,
                ArenaRef arena = {});
  OnlineCluster(Simulator& sim, const Cluster& desc)
      : OnlineCluster(sim, desc, Options{}) {}
  // The reusable dispatch context and pending simulator events capture
  // `this`: the engine is pinned in place for its lifetime.
  OnlineCluster(const OnlineCluster&) = delete;
  OnlineCluster& operator=(const OnlineCluster&) = delete;

  /// Pre-size the per-submission bookkeeping (records, job copies) for a
  /// replay of `n` jobs, so million-job traces do not pay growth
  /// reallocations mid-simulation.  Purely an optimization hint.
  void reserve_submissions(std::size_t n);

  /// Submit a local job at the current simulated time (or at j.release if
  /// later; the release date is honored via a timer).  `queue_priority`
  /// models the §1.2 "several priority files": higher-priority jobs are
  /// dispatched before lower ones, FCFS within a priority level (0 =
  /// default queue).
  void submit_local(const Job& j, int queue_priority = 0);

  /// Submit a hot store row directly — the no-fat-Job path GridSim and
  /// the benches drive.  `tables` is the pool `h.exec_c` indexes into
  /// (table refs are re-interned into this cluster's own pool, so the
  /// source store need not outlive the cluster).  Bit-identical to
  /// submit_local(store.job(i), ...).
  void submit_local(const HotJob& h, const TablePool& tables,
                    int queue_priority = 0);

  /// Attach the best-effort source (may be null — no grid jobs).
  void set_besteffort_source(BestEffortSource source);

  /// Node volatility (§1): change the number of usable processors at the
  /// current simulated time.  Shrinking evicts best-effort runs first,
  /// then preempts the most recently started local jobs, which are
  /// resubmitted at the head of the queue (their progress is lost).
  /// Growing triggers a dispatch.  `procs` must stay in [1, processors()].
  void set_capacity(int procs);
  int capacity() const { return capacity_; }

  const VolatilityStats& volatility_stats() const { return volatility_; }

  /// Estimated wait for a new `procs`-wide job — the load signal used by
  /// the decentralized exchange policies.  Combines the backlog
  /// (queued+running local work divided by the usable capacity) with a
  /// width term: a wide job additionally waits until `procs` processors
  /// can be simultaneously free (best-effort runs are killable and do
  /// not count as occupancy).  A job wider than the current
  /// volatility-shrunk capacity waits for nodes to return: infinity.
  double expected_wait(int procs = 1) const;

  int processors() const { return procs_total_; }
  double speed() const { return desc_.speed; }
  ClusterId id() const { return desc_.id; }

  const ArenaVec<LocalJobRecord>& local_records() const { return records_; }
  const BestEffortStats& besteffort_stats() const { return be_stats_; }

  /// Introspection for the grid-level validator (sim/grid_sim.h): a
  /// drained simulation must leave nothing queued or running.
  std::size_t queued_jobs() const { return queue_.size(); }
  std::size_t running_local_jobs() const { return running_.size(); }
  std::size_t running_besteffort_jobs() const { return be_running_.size(); }

  /// Integral of busy processors (local + best-effort) for utilization,
  /// accrued up to the current simulated time.
  double busy_integral() const;
  double local_busy_integral() const;

  // ---- checkpoint/restore (core/checkpoint, driven by sim/grid_sim) ----

  /// Serialize the full per-cluster replay state: table pool, submitted
  /// rows, records, queue, running sets, stats, busy integrals and the
  /// queue policy's cross-cycle words.  `pending` is the simulator's
  /// live pending-id set (so events this engine owns — the best-effort
  /// bootstrap — are marked pending or consumed exactly).
  void save_checkpoint(CheckpointWriter& w,
                       const std::unordered_set<EventId>& pending) const;

  /// Restore into a FRESHLY constructed cluster (same descriptor, same
  /// options): rebuilds every container and re-schedules each in-flight
  /// completion under its original event id via
  /// Simulator::restore_event, so the resumed replay is bit-identical
  /// to the uninterrupted one.  The simulator must already be
  /// reset_for_restore()d.
  void restore_checkpoint(CheckpointReader& r);

  /// Append every pending event id this engine owns (local completions,
  /// best-effort completions, the best-effort bootstrap if still
  /// pending) — the grid engine's proof that a snapshot accounts for
  /// the whole event queue.
  void append_expected_event_ids(const std::unordered_set<EventId>& pending,
                                 std::vector<EventId>& out) const;

 private:
  /// A queued submission.  Deliberately tiny (no Job copy — the job
  /// lives in submitted_, keyed by the record index): queue shuffling is
  /// pure POD movement on the million-job replay hot path.
  struct Queued {
    std::size_t record;  // index into records_ and submitted_
    Time submit;
    int priority = 0;
  };
  struct RunningLocal {
    std::size_t record;
    int procs;
    Time finish;
    EventId completion = 0;
  };
  struct RunningBe {
    Time start;
    Time finish;
    Time duration;  // unit-speed duration, for resubmission
    EventId completion;
  };

  void dispatch();
  void start_local(std::size_t queue_index);
  void finish_local(std::size_t record_index);
  /// Completion of the best-effort run with this finish time (the
  /// callback body of the phase-2 grants — also the restore target, so
  /// a restored completion executes the exact same code path).
  void finish_besteffort(Time finish);
  /// Submission past the release deferral: `h.exec_c` must already index
  /// this cluster's own pool_.
  void submit_hot(const HotJob& h, int queue_priority);
  int allotment_for(const HotJob& h) const;
  QueuedJobView view_of(const Queued& q) const;
  /// Lazy view materialization for the reusable dispatch_ctx_.
  void fill_views(std::vector<QueuedJobView>& queue,
                  std::vector<RunningJobView>& running) const;
  /// Refresh the reusable dispatch context from the current engine
  /// state at the start of a dispatch cycle; kept in sync across the
  /// cycle's picks via on_started().
  void refresh_dispatch_context();
  /// Accrue busy integrals up to now, then apply counter deltas.
  void account(int delta_local, int delta_be);
  int killable_procs() const { return static_cast<int>(be_running_.size()); }
  void kill_best_effort(int count);

  Simulator& sim_;
  Cluster desc_;
  Options opts_;
  std::unique_ptr<QueuePolicy> qpolicy_;
  int procs_total_;
  int capacity_ = 0;  ///< currently usable processors (volatility)
  int free_ = 0;

  /// Cold slab: tabulated execution times of the submitted jobs (rigid
  /// jobs carry their constant inline in the ExecRef and intern nothing).
  TablePool pool_;
  /// Ring deque, not vector: FCFS pops the head of a potentially deep
  /// backlog once per start — O(1) here versus shifting the whole queue —
  /// and the single ring buffer grows from the replay arena.
  RingVec<Queued> queue_;
  /// Monotone lower bound on the priorities currently queued (reset when
  /// the queue empties).  A submission with priority <= this bound can
  /// never precede an existing entry, so the §1.2 insertion scan
  /// short-circuits to push_back — O(1) for the single-priority replays
  /// that dominate at scale.  A stale (too small) bound only forces the
  /// exact scan, never a wrong position.
  int queue_min_priority_ = std::numeric_limits<int>::max();
  ArenaVec<RunningLocal> running_;
  ArenaVec<RunningBe> be_running_;
  ArenaVec<LocalJobRecord> records_;
  /// Aligned with records_, for resubmission: 64-byte hot rows, never
  /// fat Jobs — one cache line per job on the dispatch hot path.
  ArenaVec<HotJob> submitted_;
  /// Reused across dispatch cycles (see DispatchContext::reset).
  DispatchContext dispatch_ctx_;
  /// Scratch for expected_wait's finish-order walk (no per-call alloc).
  mutable ArenaVec<const RunningLocal*> wait_scratch_;
  BestEffortStats be_stats_;
  VolatilityStats volatility_;
  BestEffortSource be_source_;
  /// The supply-arrived bootstrap event of set_besteffort_source — owned
  /// here so checkpoints can account for it while it is still pending.
  EventId be_bootstrap_ = 0;
  Time be_bootstrap_time_ = 0.0;

  // Busy-time integrals maintained incrementally.
  double busy_integral_ = 0.0;
  double local_busy_integral_ = 0.0;
  Time last_change_ = 0.0;
  int local_busy_now_ = 0;
  int be_busy_now_ = 0;
};

}  // namespace lgs
