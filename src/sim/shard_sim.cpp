#include "sim/shard_sim.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "core/profiler.h"
#include "core/spsc_ring.h"
#include "grid/exchange.h"

namespace lgs {

const char* to_string(ShardPlacement p) {
  switch (p) {
    case ShardPlacement::kLpt:
      return "lpt";
    case ShardPlacement::kRoundRobin:
      return "round-robin";
  }
  return "?";
}

ShardPlacement shard_placement_from_string(const std::string& s) {
  if (s == "lpt") return ShardPlacement::kLpt;
  if (s == "round-robin") return ShardPlacement::kRoundRobin;
  throw std::invalid_argument("unknown shard placement: " + s);
}

/// One worker shard: a private arena, a private event queue on it, and
/// the SPSC mailbox the coordinator streams arrivals through (static
/// strategies).  `error` carries a worker exception across the join.
struct ShardGridSim::Shard {
  /// One routed arrival: release instant + target cluster + store row.
  struct Arrival {
    Time release;
    std::uint32_t cluster;
    std::uint32_t job;
  };
  /// 4096 × 16 B = 64 KiB in flight per shard: deep enough that the
  /// coordinator's walk stays ahead of the workers, small enough to
  /// bound memory when one shard lags.
  static constexpr std::size_t kMailboxCapacity = 4096;
  /// Arrivals moved per bulk mailbox operation (push_n/pop_n): one
  /// release-store per batch instead of per item on the hot streaming
  /// path.
  static constexpr std::size_t kArrivalBatch = 64;

  Arena arena;
  std::unique_ptr<Simulator> sim;
  SpscRing<Arrival> mailbox{kMailboxCapacity};
  /// Coordinator-side staging buffer for bulk pushes (only the
  /// coordinator touches it).
  std::vector<Arrival> staging;
  std::exception_ptr error;
};

ShardGridSim::ShardGridSim(const LightGrid& grid, const GridSimOptions& opts,
                           int threads, Arena* arena, ShardPlacement placement)
    : grid_(grid),
      opts_(opts),
      placement_(placement),
      arena_(arena != nullptr ? *arena : owned_arena_),
      store_(ArenaRef(arena_)),
      pending_(ArenaAllocator<GridPending>(ArenaRef(arena_))),
      plan_(ArenaAllocator<std::uint32_t>(ArenaRef(arena_))),
      route_order_(ArenaAllocator<std::uint32_t>(ArenaRef(arena_))) {
  if (grid_.clusters.empty())
    throw std::invalid_argument("grid without clusters");
  if (threads < 0)
    throw std::invalid_argument("negative shard thread count");
  const std::size_t want =
      threads > 0 ? static_cast<std::size_t>(threads)
                  : std::max(1u, std::thread::hardware_concurrency());
  const std::size_t n_shards = std::min(want, grid_.clusters.size());
  shards_.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->sim = std::make_unique<Simulator>(ArenaRef(sh->arena));
    shards_.push_back(std::move(sh));
  }
  // Cluster -> shard binding is deferred to ensure_materialized() so
  // the LPT cost model can see the trace split (submissions arrive
  // after construction).
}

ShardGridSim::~ShardGridSim() = default;

std::vector<std::uint32_t> ShardGridSim::compute_placement() const {
  const std::size_t n = grid_.clusters.size();
  const std::size_t n_shards = shards_.size();
  std::vector<std::uint32_t> owner(n);
  if (placement_ == ShardPlacement::kRoundRobin || n_shards <= 1) {
    for (std::size_t i = 0; i < n; ++i)
      owner[i] = static_cast<std::uint32_t>(i % n_shards);
    return owner;
  }
  // Cost model: processors × (1 + home-trace job count).  The job count
  // proxies expected load (routing may migrate some away, but home
  // counts are the right order of magnitude); the +1 keeps empty
  // clusters from costing nothing at all.
  std::vector<std::size_t> jobs_at_home(n, 0);
  for (const GridPending& p : pending_) ++jobs_at_home[p.home];
  std::vector<double> cost(n);
  for (std::size_t i = 0; i < n; ++i)
    cost[i] = static_cast<double>(grid_.clusters[i].processors()) *
              (1.0 + static_cast<double>(jobs_at_home[i]));
  // LPT: heaviest cluster first (stable sort — equal costs keep cluster
  // index order), each onto the least-loaded shard (strict < keeps the
  // lowest shard index on ties).  Deterministic by construction.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), std::uint32_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&cost](std::uint32_t a, std::uint32_t b) {
                     return cost[a] > cost[b];
                   });
  std::vector<double> load(n_shards, 0.0);
  for (const std::uint32_t c : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < n_shards; ++s)
      if (load[s] < load[best]) best = s;
    owner[c] = static_cast<std::uint32_t>(best);
    load[best] += cost[c];
  }
  return owner;
}

void ShardGridSim::ensure_materialized() const {
  if (materialized_) return;
  materialized_ = true;
  shard_of_ = compute_placement();
  // The coupled strategy needs every shard on the shared id counter
  // BEFORE any event is scheduled (the bootstrap dispatches below must
  // carry serial ids 1..N).
  const bool coupled = !opts_.bags.empty() && shards_.size() > 1;
  if (coupled)
    for (const auto& sh : shards_) sh->sim->share_ids(&id_counter_);
  clusters_.reserve(grid_.clusters.size());
  for (std::size_t i = 0; i < grid_.clusters.size(); ++i) {
    const std::size_t s = shard_of_[i];
    clusters_.push_back(std::make_unique<OnlineCluster>(
        *shards_[s]->sim, grid_.clusters[i], opts_.cluster,
        ArenaRef(shards_[s]->arena)));
  }
  if (!opts_.bags.empty()) {
    server_ = std::make_unique<CentralServer>(opts_.bags);
    for (auto& c : clusters_)
      c->set_besteffort_source(server_->make_source());
  }
  if (!deferred_reserve_.empty()) {
    for (std::size_t c = 0; c < deferred_reserve_.size(); ++c)
      clusters_[c]->reserve_submissions(deferred_reserve_[c]);
    deferred_reserve_.clear();
  }
}

int ShardGridSim::shard_count() const {
  return static_cast<int>(shards_.size());
}

std::uint64_t ShardGridSim::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->sim->executed();
  return total;
}

std::size_t ShardGridSim::arena_peak_bytes() const {
  std::size_t total = arena_.stats().bytes_peak;
  for (const auto& sh : shards_) total += sh->arena.stats().bytes_peak;
  return total;
}

void ShardGridSim::submit(std::size_t home, const Job& j) {
  if (ran_) throw std::logic_error("submit after run()");
  if (borrowed_ != nullptr)
    throw std::logic_error("cannot mix submit() with submit_store()");
  if (home >= grid_.clusters.size())
    throw std::invalid_argument("home cluster out of range");
  store_.append(j);
  pending_.push_back(GridPending{static_cast<std::uint32_t>(home),
                                 static_cast<std::uint32_t>(store_.size() - 1)});
}

void ShardGridSim::submit_workloads(const std::vector<JobSet>& per_cluster) {
  if (per_cluster.size() > grid_.clusters.size())
    throw std::invalid_argument("more workloads than clusters");
  std::size_t total = 0;
  for (const JobSet& jobs : per_cluster) total += jobs.size();
  pending_.reserve(pending_.size() + total);
  store_.reserve(store_.size() + total);
  if (deferred_reserve_.empty() && !materialized_)
    deferred_reserve_.assign(grid_.clusters.size(), 0);
  for (std::size_t i = 0; i < per_cluster.size(); ++i) {
    if (materialized_)
      clusters_[i]->reserve_submissions(per_cluster[i].size());
    else
      deferred_reserve_[i] += per_cluster[i].size();
    for (const Job& j : per_cluster[i]) submit(i, j);
  }
}

void ShardGridSim::submit_store(const JobStore& store) {
  if (ran_) throw std::logic_error("submit after run()");
  if (borrowed_ != nullptr || !store_.empty())
    throw std::logic_error("cannot mix submit_store() with prior submissions");
  borrowed_ = &store;
  const std::vector<std::size_t> counts =
      group_pending_by_home(store, grid_.clusters.size(), pending_);
  if (materialized_) {
    for (std::size_t c = 0; c < grid_.clusters.size(); ++c)
      clusters_[c]->reserve_submissions(counts[c]);
  } else {
    if (deferred_reserve_.empty())
      deferred_reserve_.assign(grid_.clusters.size(), 0);
    for (std::size_t c = 0; c < grid_.clusters.size(); ++c)
      deferred_reserve_[c] += counts[c];
  }
}

std::size_t ShardGridSim::fallback_target(std::size_t target,
                                          int min_procs) const {
  if (min_procs <= clusters_[target]->processors()) return target;
  for (std::size_t c = 0; c < clusters_.size(); ++c)
    if (min_procs <= clusters_[c]->processors()) return c;
  throw std::invalid_argument("job wider than every cluster in the grid");
}

std::size_t ShardGridSim::static_target(std::size_t pending_index) const {
  const GridPending& p = pending_[pending_index];
  const std::size_t target = opts_.routing == GridRouting::kGlobalPlan
                                 ? plan_[pending_index]
                                 : p.home;
  return fallback_target(target, jobs()[p.index].min_procs);
}

void ShardGridSim::route_one(std::size_t pending_index) {
  LGS_PROF_COUNT("grid.routes", 1);
  const GridPending& p = pending_[pending_index];
  const JobStore& js = jobs();
  std::size_t target = p.home;
  switch (opts_.routing) {
    case GridRouting::kIsolated:
      break;
    case GridRouting::kThreshold:
    case GridRouting::kEconomic: {
      ExchangeOptions ex;
      ex.policy = to_exchange_policy(opts_.routing);
      ex.wait_threshold = opts_.wait_threshold;
      ex.migration_penalty = opts_.migration_penalty;
      // Bidding consumes the fat interface (see GridSim::route); the
      // bid reads expected_wait on clusters of OTHER shards, which is
      // exactly why the dynamic strategies quiesce every shard at this
      // instant first.
      Job j = js.job(p.index);
      j.release = 0.0;
      LGS_PROF_COUNT("grid.exchange_bids", 1);
      target = exchange_target(clusters_, p.home, j, ex);
      break;
    }
    case GridRouting::kGlobalPlan:
      target = plan_[pending_index];
      break;
  }
  const HotJob& row = js[p.index];
  target = fallback_target(target, row.min_procs);
  if (target != p.home) {
    ++migrations_;
    LGS_PROF_COUNT("grid.migrations", 1);
  }
  HotJob h = row;
  h.release = 0.0;
  clusters_[target]->submit_local(h, js.tables());
}

void ShardGridSim::build_route_order() {
  // Stable sort: equal release times route in submission order, the
  // serial engine's tie-break.
  route_order_.resize(pending_.size());
  std::iota(route_order_.begin(), route_order_.end(), std::uint32_t{0});
  std::stable_sort(
      route_order_.begin(), route_order_.end(),
      [this](std::uint32_t a, std::uint32_t b) {
        return effective_grid_release(jobs()[pending_[a].index].release) <
               effective_grid_release(jobs()[pending_[b].index].release);
      });
}

void ShardGridSim::arm_pump() {
  // The serial engine's schedule_next_arrival allocates an id for the
  // pump event here; consume the same id from the shared counter so
  // every subsequent allocation matches serially.  The pump never
  // enters a shard queue — run_coupled merges its (t, -2, id) key
  // virtually.
  if (route_cursor_ >= route_order_.size()) {
    pump_armed_ = false;
    return;
  }
  pump_t_ = effective_grid_release(
      jobs()[pending_[route_order_[route_cursor_]].index].release);
  pump_id_ = id_counter_.fetch_add(1, std::memory_order_relaxed);
  pump_armed_ = true;
}

GridSimResult ShardGridSim::run(Time horizon) {
  LGS_PROF_ZONE("grid.run");
  if (ran_) throw std::logic_error("run() called twice");
  ensure_materialized();
  ran_ = true;
  if (opts_.routing == GridRouting::kGlobalPlan) {
    plan_.resize(pending_.size());
    plan_global_targets(grid_, jobs(), pending_.data(), pending_.size(),
                        plan_.data());
  }
  build_route_order();
  route_cursor_ = 0;
  const bool coupled = server_ != nullptr && shards_.size() > 1;
  // Serial id layout with bags: bootstrap dispatches took ids 1..N at
  // materialization; the serial engine allocates its pump event id
  // next, BEFORE the volatility events — mirror that here so the churn
  // stream ids line up.
  if (coupled) arm_pump();
  // Volatility churn before any worker starts: per-cluster order-free
  // streams (grid_sim.h), scheduled on the owning shard's queue.
  for (std::size_t c = 0; c < clusters_.size(); ++c)
    schedule_cluster_volatility(*shards_[shard_of_[c]]->sim, *clusters_[c],
                                opts_.volatility, opts_.volatility_seed, c);
  const bool static_routing = opts_.routing == GridRouting::kIsolated ||
                              opts_.routing == GridRouting::kGlobalPlan;
  if (shards_.size() == 1)
    run_single(horizon);
  else if (coupled)
    run_coupled(horizon);
  else if (static_routing)
    run_static(horizon);
  else
    run_windows(horizon);
  // The serial clock ends on the globally last event; with every shard
  // drained that is the max over the shard clocks (each shard replays
  // its serial event subsequence, so per-shard finals match).
  Time end = 0.0;
  for (const auto& sh : shards_) end = std::max(end, sh->sim->now());
  return aggregate_grid_result(clusters_, end, migrations_, server_.get());
}

void ShardGridSim::run_single(Time horizon) {
  // One shard: the serial event order replayed inline on the calling
  // thread (no workers) — the degenerate case of every strategy.
  Simulator& sim = *shards_[0]->sim;
  const JobStore& js = jobs();
  while (route_cursor_ < route_order_.size()) {
    const Time t = effective_grid_release(
        js[pending_[route_order_[route_cursor_]].index].release);
    if (t > horizon) break;
    sim.run_until(t, kGridArrivalPriority);
    LGS_PROF_COUNT("grid.arrival_batches", 1);
    while (route_cursor_ < route_order_.size() &&
           effective_grid_release(
               js[pending_[route_order_[route_cursor_]].index].release) <= t)
      route_one(route_order_[route_cursor_++]);
  }
  sim.run(horizon);
}

void ShardGridSim::run_coupled(Time horizon) {
  // Central best-effort server on N shards: the coordinator executes
  // events ONE at a time in merged (time, priority, id) order across
  // the shard queues — the shared id counter makes every allocation
  // land on the exact serial id, so by induction the replay (including
  // every grant-FIFO pop, kill-resubmit and completion) IS the serial
  // replay, just stored in per-shard queues.  The serial arrival pump
  // participates as a virtual event: arm_pump() holds its (t, -2, id)
  // key; when it wins the merge, the coordinator pins every shard
  // clock to the batch instant and routes the batch inline, exactly
  // like the serial pump callback.
  //
  // The moment the campaign completes (completed() == total_runs())
  // the FIFO is silent FOREVER — nothing pending, nothing running, so
  // no future dispatch can pop a grant, no kill can resubmit, no
  // completion can land — and the remaining replay decomposes like a
  // bag-free run: hand off to the parallel strategy for the tail.
  const JobStore& js = jobs();
  const long target_runs = server_->total_runs();
  bool handoff = false;
  for (;;) {
    if (server_->completed() == target_runs) {
      handoff = true;
      break;
    }
    int best_shard = -1;
    Time bt = 0.0;
    int bp = 0;
    EventId bid = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Time t;
      int p;
      EventId id;
      if (!shards_[s]->sim->peek_next(&t, &p, &id)) continue;
      if (best_shard < 0 || t < bt ||
          (t == bt && (p < bp || (p == bp && id < bid)))) {
        best_shard = static_cast<int>(s);
        bt = t;
        bp = p;
        bid = id;
      }
    }
    const bool pump_best =
        pump_armed_ &&
        (best_shard < 0 || pump_t_ < bt ||
         (pump_t_ == bt && (kGridArrivalPriority < bp ||
                            (kGridArrivalPriority == bp && pump_id_ < bid))));
    if (best_shard < 0 && !pump_armed_) break;
    const Time next_t = pump_best ? pump_t_ : bt;
    if (next_t > horizon) break;
    if (pump_best) {
      // Everything ordered before the pump already ran, so run_until
      // executes nothing — it pins each shard clock to the batch
      // instant (exchange bids and submit records read now()).
      for (const auto& sh : shards_)
        sh->sim->run_until(pump_t_, kGridArrivalPriority);
      LGS_PROF_COUNT("grid.arrival_batches", 1);
      const Time t = pump_t_;
      pump_armed_ = false;
      while (route_cursor_ < route_order_.size() &&
             effective_grid_release(
                 js[pending_[route_order_[route_cursor_]].index].release) <= t)
        route_one(route_order_[route_cursor_++]);
      arm_pump();
    } else {
      shards_[static_cast<std::size_t>(best_shard)]->sim->step_one();
    }
  }
  if (!handoff) {
    // Horizon cut (or full drain): pin every clock, serial-style.
    for (const auto& sh : shards_) sh->sim->run(horizon);
    return;
  }
  pump_armed_ = false;
  // Parallel tail: the FIFO is silent, so the remaining replay obeys
  // the bag-free determinism argument (workers' id draws stay
  // per-shard monotone on the shared counter; concurrent request()
  // calls only read the drained deque).
  const bool static_routing = opts_.routing == GridRouting::kIsolated ||
                              opts_.routing == GridRouting::kGlobalPlan;
  if (static_routing)
    run_static(horizon);
  else
    run_windows(horizon);
}

void ShardGridSim::worker_static(std::size_t s, Time horizon) {
  Shard& sh = *shards_[s];
  try {
    LGS_PROF_ZONE("grid.shard_run");
    const JobStore& js = jobs();
    Time batch_t = -1.0;
    Shard::Arrival buf[Shard::kArrivalBatch];
    // Blocking bulk pop: each arrival's instant bounds how far this
    // shard may advance, so the worker cannot outrun the coordinator —
    // and the mailbox content is timing-independent, so neither thread
    // schedule nor buffer depth can change the replay.
    while (const std::size_t n = sh.mailbox.wait_pop_n(buf, Shard::kArrivalBatch)) {
      for (std::size_t i = 0; i < n; ++i) {
        const Shard::Arrival& a = buf[i];
        sh.sim->run_until(a.release, kGridArrivalPriority);
        if (a.release != batch_t) {
          batch_t = a.release;
          LGS_PROF_COUNT("grid.arrival_batches", 1);
        }
        HotJob h = js[a.job];
        h.release = 0.0;
        clusters_[a.cluster]->submit_local(h, js.tables());
      }
    }
    sh.sim->run(horizon);
  } catch (...) {
    sh.error = std::current_exception();
    // Keep draining so the coordinator's blocking push can never wedge
    // on a dead consumer.
    Shard::Arrival sink[Shard::kArrivalBatch];
    while (sh.mailbox.wait_pop_n(sink, Shard::kArrivalBatch) != 0) {
    }
  }
}

void ShardGridSim::run_static(Time horizon) {
  // Static strategies (isolated / global-plan): every routing decision
  // is computable here, before the clock starts.  The coordinator walks
  // the arrivals in global release order and streams each to its target
  // shard's mailbox (staged into kArrivalBatch-deep bulk pushes);
  // workers replay concurrently with zero barriers.
  std::vector<std::thread> pool;
  pool.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    pool.emplace_back([this, s, horizon] { worker_static(s, horizon); });
  const JobStore& js = jobs();
  for (auto& sh : shards_) {
    sh->staging.clear();
    sh->staging.reserve(Shard::kArrivalBatch);
  }
  for (; route_cursor_ < route_order_.size(); ++route_cursor_) {
    const std::uint32_t idx = route_order_[route_cursor_];
    const GridPending& p = pending_[idx];
    const Time t = effective_grid_release(js[p.index].release);
    if (t > horizon) break;
    LGS_PROF_COUNT("grid.routes", 1);
    const std::size_t target = static_target(idx);
    if (target != p.home) {
      ++migrations_;
      LGS_PROF_COUNT("grid.migrations", 1);
    }
    Shard& sh = *shards_[shard_of_[target]];
    sh.staging.push_back(
        Shard::Arrival{t, static_cast<std::uint32_t>(target), p.index});
    if (sh.staging.size() >= Shard::kArrivalBatch) {
      sh.mailbox.push_n(sh.staging.data(), sh.staging.size());
      sh.staging.clear();
    }
  }
  for (auto& sh : shards_) {
    if (!sh->staging.empty()) {
      sh->mailbox.push_n(sh->staging.data(), sh->staging.size());
      sh->staging.clear();
    }
    sh->mailbox.close();
  }
  for (auto& th : pool) th.join();
  for (auto& sh : shards_)
    if (sh->error) std::rethrow_exception(sh->error);
}

namespace {

/// Barrier coordinator of the dynamic strategies: the coordinator
/// issues one command per window (advance to T / final drain / exit)
/// and blocks until every worker acknowledged — a generation-counter
/// barrier on one mutex, which also carries the happens-before edges
/// that let the coordinator touch quiesced shard state in between.
struct WindowCrew {
  enum class Cmd { kRunUntil, kDrain, kExit };

  explicit WindowCrew(int workers) : workers_(workers) {}

  /// Coordinator: publish a command and wait for all acknowledgements.
  void issue(Cmd c, Time t) {
    std::unique_lock<std::mutex> lk(mu_);
    cmd_ = c;
    target_ = t;
    ++epoch_;
    pending_ = workers_;
    cv_cmd_.notify_all();
    cv_done_.wait(lk, [this] { return pending_ == 0; });
  }

  /// Worker: park until the next command (returns it + its target).
  Cmd await(std::uint64_t* seen, Time* t) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_cmd_.wait(lk, [this, seen] { return epoch_ != *seen; });
    *seen = epoch_;
    *t = target_;
    return cmd_;
  }

  /// Worker: acknowledge the current command as executed.
  void ack() {
    std::lock_guard<std::mutex> lk(mu_);
    if (--pending_ == 0) cv_done_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_cmd_, cv_done_;
  int workers_;
  int pending_ = 0;
  std::uint64_t epoch_ = 0;
  Cmd cmd_ = Cmd::kExit;
  Time target_ = 0.0;
};

}  // namespace

void ShardGridSim::run_windows(Time horizon) {
  // Dynamic strategies (threshold / economic): exchange bids read every
  // cluster's expected_wait at each arrival instant, so the engine runs
  // conservative windows — quiesce all shards at the instant, then the
  // coordinator alone replays the serial bid/submit sequence (bids at
  // one instant observe the submissions of the previous ones, exactly
  // as the serial pump interleaves them).
  WindowCrew crew(static_cast<int>(shards_.size()));
  std::vector<std::thread> pool;
  pool.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    pool.emplace_back([this, s, &crew] {
      LGS_PROF_ZONE("grid.shard_run");
      Shard& sh = *shards_[s];
      std::uint64_t seen = 0;
      for (;;) {
        Time t = 0.0;
        const WindowCrew::Cmd c = crew.await(&seen, &t);
        if (c == WindowCrew::Cmd::kExit) {
          crew.ack();
          return;
        }
        try {
          if (c == WindowCrew::Cmd::kRunUntil)
            sh.sim->run_until(t, kGridArrivalPriority);
          else
            sh.sim->run(t);
        } catch (...) {
          if (!sh.error) sh.error = std::current_exception();
        }
        LGS_PROF_COUNT("grid.shard_barrier_waits", 1);
        crew.ack();
      }
    });
  const JobStore& js = jobs();
  try {
    while (route_cursor_ < route_order_.size()) {
      const Time t = effective_grid_release(
          js[pending_[route_order_[route_cursor_]].index].release);
      if (t > horizon) break;
      crew.issue(WindowCrew::Cmd::kRunUntil, t);
      LGS_PROF_COUNT("grid.arrival_batches", 1);
      while (route_cursor_ < route_order_.size() &&
             effective_grid_release(
                 js[pending_[route_order_[route_cursor_]].index].release) <= t)
        route_one(route_order_[route_cursor_++]);
    }
    crew.issue(WindowCrew::Cmd::kDrain, horizon);
  } catch (...) {
    crew.issue(WindowCrew::Cmd::kExit, 0.0);
    for (auto& th : pool) th.join();
    throw;
  }
  crew.issue(WindowCrew::Cmd::kExit, 0.0);
  for (auto& th : pool) th.join();
  for (auto& sh : shards_)
    if (sh->error) std::rethrow_exception(sh->error);
}

std::vector<std::string> validate_grid_result(const ShardGridSim& sim,
                                              const GridSimResult& result) {
  return validate_grid_clusters(sim.clusters(), result);
}

}  // namespace lgs
