#include "sim/online_cluster.h"

#include <algorithm>
#include <stdexcept>

#include "core/checkpoint.h"
#include "core/profiler.h"

namespace lgs {

OnlineCluster::OnlineCluster(Simulator& sim, const Cluster& desc, Options opts,
                             ArenaRef arena)
    : sim_(sim),
      desc_(desc),
      opts_(std::move(opts)),
      qpolicy_(make_queue_policy(opts_.policy)),
      procs_total_(desc.processors()),
      queue_(arena),
      running_(ArenaAllocator<RunningLocal>(arena)),
      be_running_(ArenaAllocator<RunningBe>(arena)),
      records_(ArenaAllocator<LocalJobRecord>(arena)),
      submitted_(ArenaAllocator<HotJob>(arena)),
      dispatch_ctx_([this](std::vector<QueuedJobView>& queue,
                           std::vector<RunningJobView>& running) {
        fill_views(queue, running);
      }),
      wait_scratch_(ArenaAllocator<const RunningLocal*>(arena)) {
  if (procs_total_ < 1)
    throw std::invalid_argument("cluster without processors");
  capacity_ = procs_total_;
  free_ = procs_total_;
}

void OnlineCluster::reserve_submissions(std::size_t n) {
  records_.reserve(records_.size() + n);
  submitted_.reserve(submitted_.size() + n);
}

void OnlineCluster::set_capacity(int procs) {
  if (procs < 1 || procs > procs_total_)
    throw std::invalid_argument("capacity outside [1, processors()]");
  const int delta = procs - capacity_;
  capacity_ = procs;
  free_ += delta;
  ++volatility_.capacity_changes;
  // Shrinking may leave free_ negative: evict until consistent —
  // best-effort runs first (they are killable by design), then the most
  // recently started local jobs.
  while (free_ < 0 && !be_running_.empty()) kill_best_effort(1);
  while (free_ < 0) {
    if (running_.empty())
      throw std::logic_error("volatility eviction found nothing to evict");
    std::size_t victim = 0;
    Time latest = -kTimeInfinity;
    for (std::size_t i = 0; i < running_.size(); ++i) {
      const Time started = records_[running_[i].record].start;
      if (started > latest) {
        latest = started;
        victim = i;
      }
    }
    const RunningLocal evicted = running_[victim];
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(victim));
    sim_.cancel(evicted.completion);
    free_ += evicted.procs;
    account(-evicted.procs, 0);
    ++volatility_.local_preemptions;
    volatility_.local_wasted +=
        static_cast<double>(evicted.procs) *
        (sim_.now() - records_[evicted.record].start);
    // Resubmit at the head of the queue; progress is lost (restart).
    Queued q{evicted.record, sim_.now(), 0};
    qpolicy_->on_completion(evicted.record);  // the run is gone
    qpolicy_->on_submit(view_of(q));
    queue_.push_front(q);
    queue_min_priority_ = std::min(queue_min_priority_, q.priority);
  }
  dispatch();
}

void OnlineCluster::set_besteffort_source(BestEffortSource source) {
  be_source_ = std::move(source);
  // New supply may fill currently idle processors.  The event id is
  // kept so a checkpoint taken before it fires can account for it.
  be_bootstrap_time_ = sim_.now();
  be_bootstrap_ = sim_.after(0.0, [this] { dispatch(); }, /*priority=*/1);
}

int OnlineCluster::allotment_for(const HotJob& h) const {
  const int hi = std::min<int>(h.max_procs, procs_total_);
  if (hi < h.min_procs)
    throw std::invalid_argument("job wider than the cluster");
  return std::max<int>(h.min_procs, exec_useful_limit(h.exec_ref(), pool_, hi));
}

void OnlineCluster::submit_local(const Job& j, int queue_priority) {
  // Compact the fat job into a 64-byte hot row (tables interned into
  // this cluster's pool) and run the hot path — the two entry points
  // are bit-identical by construction.
  HotJob h;
  h.release = j.release;
  h.weight = j.weight;
  h.due = j.due;
  h.id = j.id;
  h.min_procs = j.min_procs;
  h.max_procs = j.max_procs;
  h.community = j.community;
  h.kind = j.kind;
  h.set_exec_ref(j.model.compact(pool_));
  submit_hot(h, queue_priority);
}

void OnlineCluster::submit_local(const HotJob& h, const TablePool& tables,
                                 int queue_priority) {
  HotJob local = h;
  // Re-intern table refs so the engine never dangles into the caller's
  // store; every other kind carries its parameters inline.
  if (local.exec_kind == ExecKind::kTable)
    local.exec_c = pool_.intern(tables.data(h.exec_c), tables.len(h.exec_c));
  submit_hot(local, queue_priority);
}

void OnlineCluster::submit_hot(const HotJob& h, int queue_priority) {
  LGS_PROF_COUNT("cluster.submits", 1);
  if (h.release > sim_.now() + kTimeEps) {
    // 64-byte POD capture — the deferred-release timer no longer copies
    // a fat Job into the event slot.
    sim_.at(h.release,
            [this, h, queue_priority] { submit_hot(h, queue_priority); },
            /*priority=*/-1);
    return;
  }
  LocalJobRecord rec;
  rec.id = h.id;
  rec.community = h.community;
  rec.submit = sim_.now();
  const int k = allotment_for(h);
  rec.procs = k;
  rec.best_duration =
      exec_time(h.exec_ref(), pool_, std::min<int>(h.max_procs, procs_total_)) /
      desc_.speed;
  records_.push_back(rec);
  submitted_.push_back(h);
  // Insert behind every queued job of equal or higher priority (the §1.2
  // priority files: strict priority between files, FCFS inside one).
  // Fast path: when no queued entry can have a lower priority than the
  // submission, the insertion point is provably the end — the scan (and
  // its O(queue) cost per submit) only runs for genuine multi-priority
  // interleavings.
  Queued entry{records_.size() - 1, sim_.now(), queue_priority};
  qpolicy_->on_submit(view_of(entry));
  if (queue_.empty() || queue_priority <= queue_min_priority_) {
    queue_.push_back(entry);
  } else {
    std::size_t pos = queue_.size();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i].priority < queue_priority) {
        pos = i;
        break;
      }
    }
    queue_.insert(pos, entry);
  }
  queue_min_priority_ = std::min(queue_min_priority_, queue_priority);
  dispatch();
}

QueuedJobView OnlineCluster::view_of(const Queued& q) const {
  const HotJob& job = submitted_[q.record];
  QueuedJobView view;
  view.id = job.id;
  view.record = q.record;
  view.procs = records_[q.record].procs;
  view.duration = exec_time(job.exec_ref(), pool_, view.procs) / desc_.speed;
  view.submit = q.submit;
  view.priority = q.priority;
  return view;
}

void OnlineCluster::fill_views(std::vector<QueuedJobView>& queue,
                               std::vector<RunningJobView>& running) const {
  // Views materialize lazily from the *current* engine state, so the
  // filler is re-invoked after every pick without the engine having to
  // maintain a parallel copy.
  queue.reserve(queue_.size());
  for (std::size_t i = 0; i < queue_.size(); ++i)
    queue.push_back(view_of(queue_[i]));
  running.reserve(running_.size());
  for (const RunningLocal& r : running_)
    running.push_back(RunningJobView{r.record, r.procs, r.finish});
}

void OnlineCluster::refresh_dispatch_context() {
  DispatchContext& ctx = dispatch_ctx_;
  ctx.reset();
  ctx.now = sim_.now();
  ctx.free_procs = free_;
  ctx.killable_procs = killable_procs();
  ctx.capacity = capacity_;
  ctx.total_procs = procs_total_;
  ctx.speed = desc_.speed;
  ctx.head_procs =
      queue_.empty() ? 0 : records_[queue_.front().record].procs;
}

void OnlineCluster::account(int delta_local, int delta_be) {
  const Time now = sim_.now();
  const double span = now - last_change_;
  if (span > 0) {
    local_busy_integral_ += span * local_busy_now_;
    busy_integral_ += span * (local_busy_now_ + be_busy_now_);
  }
  last_change_ = now;
  local_busy_now_ += delta_local;
  be_busy_now_ += delta_be;
}

double OnlineCluster::busy_integral() const {
  const double span = sim_.now() - last_change_;
  return busy_integral_ + span * (local_busy_now_ + be_busy_now_);
}

double OnlineCluster::local_busy_integral() const {
  const double span = sim_.now() - last_change_;
  return local_busy_integral_ + span * local_busy_now_;
}

double OnlineCluster::expected_wait(int procs) const {
  LGS_PROF_COUNT("cluster.expected_wait_calls", 1);
  if (procs < 1)
    throw std::invalid_argument("expected_wait needs procs >= 1");
  // Wider than the volatility-shrunk capacity: the wait is unbounded
  // until nodes return — signal infinity so no exchange policy routes a
  // wide job into a crippled cluster (mirrors the too-small-cluster bid).
  if (procs > capacity_) return kTimeInfinity;
  double work = 0.0;  // processor-seconds of wall time still owed
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Queued& q = queue_[i];
    const HotJob& h = submitted_[q.record];
    work += static_cast<double>(records_[q.record].procs) *
            exec_time(h.exec_ref(), pool_,
                      std::min<int>(h.max_procs, procs_total_)) /
            desc_.speed;
  }
  for (const RunningLocal& r : running_)
    work += static_cast<double>(r.procs) *
            std::max(0.0, r.finish - sim_.now());
  const double backlog = work / capacity_;
  if (procs <= free_ + killable_procs()) return backlog;
  // Width term: a `procs`-wide job must wait for enough running local
  // jobs to finish before that many processors are simultaneously free
  // (best-effort runs are killable and therefore free on demand).  Walk
  // the completions in finish order (reused scratch: the exchange
  // policies call this per routed job).
  ArenaVec<const RunningLocal*>& by_finish = wait_scratch_;
  by_finish.clear();
  by_finish.reserve(running_.size());
  for (const RunningLocal& r : running_) by_finish.push_back(&r);
  std::sort(by_finish.begin(), by_finish.end(),
            [](const RunningLocal* a, const RunningLocal* b) {
              return a->finish < b->finish;
            });
  double width_wait = 0.0;
  int avail = free_ + killable_procs();
  for (const RunningLocal* r : by_finish) {
    avail += r->procs;
    width_wait = std::max(0.0, r->finish - sim_.now());
    if (avail >= procs) break;
  }
  return std::max(backlog, width_wait);
}

void OnlineCluster::kill_best_effort(int count) {
  for (int k = 0; k < count; ++k) {
    if (be_running_.empty()) throw std::logic_error("no best-effort to kill");
    std::size_t victim = 0;
    for (std::size_t i = 1; i < be_running_.size(); ++i) {
      const RunningBe& a = be_running_[i];
      const RunningBe& b = be_running_[victim];
      switch (opts_.kill_policy) {
        case KillPolicy::kYoungestFirst:
          if (a.start > b.start) victim = i;
          break;
        case KillPolicy::kOldestFirst:
          if (a.start < b.start) victim = i;
          break;
        case KillPolicy::kLongestRemaining:
          if (a.finish > b.finish) victim = i;
          break;
      }
    }
    const RunningBe be = be_running_[victim];
    be_running_.erase(be_running_.begin() +
                      static_cast<std::ptrdiff_t>(victim));
    sim_.cancel(be.completion);
    account(0, -1);
    ++free_;
    ++be_stats_.killed;
    LGS_PROF_COUNT("cluster.be_kills", 1);
    be_stats_.wasted_time += sim_.now() - be.start;
    if (be_source_.on_kill) be_source_.on_kill(be.duration);
  }
}

void OnlineCluster::start_local(std::size_t queue_index) {
  const Queued q = queue_[queue_index];
  queue_.erase(queue_index);
  if (queue_.empty()) queue_min_priority_ = std::numeric_limits<int>::max();
  LocalJobRecord& rec = records_[q.record];
  const int k = rec.procs;
  if (k > free_ + killable_procs())
    throw std::logic_error("start_local without room");
  if (k > free_) kill_best_effort(k - free_);
  LGS_PROF_COUNT("cluster.starts", 1);
  const Time dur =
      exec_time(submitted_[q.record].exec_ref(), pool_, k) / desc_.speed;
  rec.start = sim_.now();
  rec.finish = sim_.now() + dur;
  free_ -= k;
  account(k, 0);
  const std::size_t record_index = q.record;
  const EventId completion = sim_.at(
      rec.finish, [this, record_index] { finish_local(record_index); });
  running_.push_back({q.record, k, rec.finish, completion});
}

void OnlineCluster::finish_local(std::size_t record_index) {
  const auto it = std::find_if(running_.begin(), running_.end(),
                               [&](const RunningLocal& r) {
                                 return r.record == record_index;
                               });
  if (it == running_.end())
    throw std::logic_error("completion for unknown local job");
  free_ += it->procs;
  account(-it->procs, 0);
  qpolicy_->on_completion(record_index);
  running_.erase(it);
  dispatch();
}

void OnlineCluster::dispatch() {
  LGS_PROF_COUNT("cluster.dispatch_cycles", 1);
  // Phase 1: local jobs, ordered by the injected queue policy.
  // Best-effort runs never block a local job — they are killable, so a
  // pick fits whenever free + killable >= procs.  One context serves
  // every pick of the cycle; on_started keeps it (and its lazily built
  // skyline) in sync, so policies never rebuild a Profile per event.
  if (!queue_.empty()) {
    // The zone opens only when there is queue work to order: an empty
    // cycle is a few nanoseconds and would be mostly zone overhead.
    LGS_PROF_ZONE("cluster.dispatch");
    LGS_PROF_HIGHWATER("cluster.queue_depth_highwater", queue_.size());
    refresh_dispatch_context();
    DispatchContext& ctx = dispatch_ctx_;
    while (!queue_.empty()) {
      const std::size_t pick = qpolicy_->pick_next(ctx);
      if (pick == kNoPick) break;
      if (pick >= queue_.size())
        throw std::logic_error("queue policy picked outside the queue");
      const QueuedJobView started = view_of(queue_[pick]);
      if (started.procs > free_ + killable_procs())
        throw std::logic_error("queue policy picked a job that does not fit");
      start_local(pick);
      // Keep the shared context current: profile updated incrementally,
      // views re-materialized on demand, scalars refreshed here.
      ctx.on_started(started);
      ctx.free_procs = free_;
      ctx.killable_procs = killable_procs();
      ctx.head_procs =
          queue_.empty() ? 0 : records_[queue_.front().record].procs;
    }
  }

  // Phase 2: fill remaining holes with best-effort runs (§5.2).
  if (be_source_.request && free_ > 0) {
    const std::vector<Time> grants = be_source_.request(free_);
    for (Time unit_duration : grants) {
      if (free_ <= 0) throw std::logic_error("best-effort overcommit");
      RunningBe be;
      be.start = sim_.now();
      be.duration = unit_duration;
      be.finish = sim_.now() + unit_duration / desc_.speed;
      --free_;
      account(0, 1);
      ++be_stats_.started;
      const Time finish = be.finish;
      be.completion =
          sim_.at(finish, [this, finish] { finish_besteffort(finish); });
      be_running_.push_back(be);
    }
  }
}

void OnlineCluster::finish_besteffort(Time finish) {
  const auto it = std::find_if(be_running_.begin(), be_running_.end(),
                               [&](const RunningBe& b) {
                                 return almost_equal(b.finish, finish);
                               });
  if (it == be_running_.end())
    throw std::logic_error("completion for unknown best-effort run");
  const double wall = it->finish - it->start;
  be_running_.erase(it);
  ++free_;
  account(0, -1);
  ++be_stats_.completed;
  be_stats_.completed_time += wall;
  if (be_source_.on_done) be_source_.on_done();
  dispatch();
}

// ---------------------------------------------------------------------------
// Checkpoint/restore.
//
// Everything is serialized FIELD-WISE (never struct memcpy): HotJob and
// LocalJobRecord carry padding bytes, and a raw dump would embed
// nondeterministic padding into a checksummed blob.
// ---------------------------------------------------------------------------

void OnlineCluster::save_checkpoint(
    CheckpointWriter& w, const std::unordered_set<EventId>& pending) const {
  save_table_pool(w, pool_);

  w.u64(submitted_.size());
  for (const HotJob& h : submitted_) save_hot_job(w, h);

  w.u64(records_.size());
  for (const LocalJobRecord& rec : records_) {
    w.u32(rec.id);
    w.i32(rec.community);
    w.f64(rec.submit);
    w.f64(rec.start);
    w.f64(rec.finish);
    w.i32(rec.procs);
    w.f64(rec.best_duration);
  }

  w.u64(queue_.size());
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Queued& q = queue_[i];
    w.u64(q.record);
    w.f64(q.submit);
    w.i32(q.priority);
  }
  w.i32(queue_min_priority_);

  w.u64(running_.size());
  for (const RunningLocal& r : running_) {
    w.u64(r.record);
    w.i32(r.procs);
    w.f64(r.finish);
    w.u64(r.completion);
  }

  w.u64(be_running_.size());
  for (const RunningBe& b : be_running_) {
    w.f64(b.start);
    w.f64(b.finish);
    w.f64(b.duration);
    w.u64(b.completion);
  }

  w.i32(capacity_);
  w.i32(free_);

  w.i64(be_stats_.started);
  w.i64(be_stats_.completed);
  w.i64(be_stats_.killed);
  w.f64(be_stats_.wasted_time);
  w.f64(be_stats_.completed_time);

  w.i64(volatility_.capacity_changes);
  w.i64(volatility_.local_preemptions);
  w.f64(volatility_.local_wasted);

  w.f64(busy_integral_);
  w.f64(local_busy_integral_);
  w.f64(last_change_);
  w.i32(local_busy_now_);
  w.i32(be_busy_now_);

  // The set_besteffort_source bootstrap: pending only when the snapshot
  // was taken before its (t=attach-time, priority 1) slot executed.
  const bool bootstrap_pending =
      be_bootstrap_ != 0 && pending.count(be_bootstrap_) != 0;
  w.u8(bootstrap_pending ? 1 : 0);
  w.u64(be_bootstrap_);
  w.f64(be_bootstrap_time_);

  std::vector<std::uint64_t> policy_words;
  qpolicy_->save_state(policy_words);
  w.u64(policy_words.size());
  for (std::uint64_t word : policy_words) w.u64(word);
}

void OnlineCluster::restore_checkpoint(CheckpointReader& r) {
  load_table_pool(r, pool_);

  submitted_.clear();
  const std::uint64_t n_submitted = r.u64();
  submitted_.reserve(n_submitted);
  for (std::uint64_t i = 0; i < n_submitted; ++i)
    submitted_.push_back(load_hot_job(r));

  records_.clear();
  const std::uint64_t n_records = r.u64();
  records_.reserve(n_records);
  for (std::uint64_t i = 0; i < n_records; ++i) {
    LocalJobRecord rec;
    rec.id = r.u32();
    rec.community = r.i32();
    rec.submit = r.f64();
    rec.start = r.f64();
    rec.finish = r.f64();
    rec.procs = r.i32();
    rec.best_duration = r.f64();
    records_.push_back(rec);
  }

  queue_.clear();
  const std::uint64_t n_queue = r.u64();
  for (std::uint64_t i = 0; i < n_queue; ++i) {
    Queued q;
    q.record = static_cast<std::size_t>(r.u64());
    q.submit = r.f64();
    q.priority = r.i32();
    if (q.record >= records_.size())
      throw CheckpointError("queued entry references unknown record");
    queue_.push_back(q);
    // The policy re-learns the queue through on_submit, in queue order —
    // the same calls a live engine made (modulo its own saved words).
    qpolicy_->on_submit(view_of(q));
  }
  queue_min_priority_ = r.i32();

  running_.clear();
  const std::uint64_t n_running = r.u64();
  running_.reserve(n_running);
  for (std::uint64_t i = 0; i < n_running; ++i) {
    RunningLocal run;
    run.record = static_cast<std::size_t>(r.u64());
    run.procs = r.i32();
    run.finish = r.f64();
    run.completion = r.u64();
    if (run.record >= records_.size())
      throw CheckpointError("running entry references unknown record");
    running_.push_back(run);
    const std::size_t record_index = run.record;
    sim_.restore_event(run.finish, /*priority=*/0, run.completion,
                       [this, record_index] { finish_local(record_index); });
  }

  be_running_.clear();
  const std::uint64_t n_be = r.u64();
  be_running_.reserve(n_be);
  for (std::uint64_t i = 0; i < n_be; ++i) {
    RunningBe be;
    be.start = r.f64();
    be.finish = r.f64();
    be.duration = r.f64();
    be.completion = r.u64();
    be_running_.push_back(be);
    const Time finish = be.finish;
    sim_.restore_event(be.finish, /*priority=*/0, be.completion,
                       [this, finish] { finish_besteffort(finish); });
  }

  capacity_ = r.i32();
  free_ = r.i32();

  be_stats_.started = static_cast<long>(r.i64());
  be_stats_.completed = static_cast<long>(r.i64());
  be_stats_.killed = static_cast<long>(r.i64());
  be_stats_.wasted_time = r.f64();
  be_stats_.completed_time = r.f64();

  volatility_.capacity_changes = static_cast<long>(r.i64());
  volatility_.local_preemptions = static_cast<long>(r.i64());
  volatility_.local_wasted = r.f64();

  busy_integral_ = r.f64();
  local_busy_integral_ = r.f64();
  last_change_ = r.f64();
  local_busy_now_ = r.i32();
  be_busy_now_ = r.i32();

  const bool bootstrap_pending = r.u8() != 0;
  be_bootstrap_ = r.u64();
  be_bootstrap_time_ = r.f64();
  if (bootstrap_pending) {
    if (!be_source_.request)
      throw CheckpointError(
          "snapshot has a pending best-effort bootstrap but the restored "
          "cluster has no source attached");
    sim_.restore_event(be_bootstrap_time_, /*priority=*/1, be_bootstrap_,
                       [this] { dispatch(); });
  }

  const std::uint64_t n_words = r.u64();
  std::vector<std::uint64_t> policy_words(n_words);
  for (std::uint64_t i = 0; i < n_words; ++i) policy_words[i] = r.u64();
  qpolicy_->restore_state(policy_words.data(), policy_words.size());
}

void OnlineCluster::append_expected_event_ids(
    const std::unordered_set<EventId>& pending,
    std::vector<EventId>& out) const {
  for (const RunningLocal& r : running_) out.push_back(r.completion);
  for (const RunningBe& b : be_running_) out.push_back(b.completion);
  if (be_bootstrap_ != 0 && pending.count(be_bootstrap_) != 0)
    out.push_back(be_bootstrap_);
}

}  // namespace lgs
