// Sharded multi-cluster replay (ROADMAP item 1: intra-grid
// parallelism): the clusters of ONE grid partitioned across worker
// threads, each advancing its shard's PRIVATE event queue
// (sim/simulator.h) out of a PRIVATE arena — with the hard requirement
// that the outcome is bit-identical to the serial GridSim, pinned by
// the FNV-1a golden digests of tests/test_shard_sim.cpp.
//
// Why clusters shard at all: jobs cross cluster boundaries only at
// their release instants (routing / exchange bids) and through the
// central best-effort server's grant queue.  Everything else —
// dispatch, backfilling, completions, volatility churn — is
// cluster-private, so the per-cluster event subsequences of the serial
// replay commute freely across clusters and can run concurrently.
// Three execution strategies follow (the determinism contract, also in
// docs/ARCHITECTURE.md):
//
//  * STATIC routing (isolated / global-plan, no best-effort bags):
//    every target is computable before the clock starts (the global
//    plan is an upfront prelude; fallback widening reads only static
//    processors()).  The coordinator thread streams arrivals in global
//    release order through one lock-free SPSC mailbox per shard
//    (core/spsc_ring.h), batched per push_n/pop_n to amortize the
//    atomic traffic; each worker alternates
//    `run_until(next_arrival, kGridArrivalPriority)` with submissions.
//    No barriers at all — wall-clock scales with the slowest shard.
//
//  * DYNAMIC routing (threshold / economic, no bags): exchange bids
//    read every cluster's expected_wait at each arrival instant, so the
//    engine runs conservative time-window barriers: workers quiesce
//    their shards at the next arrival instant T (run_until pins every
//    shard clock to exactly T, before the pump's queue position), then
//    the coordinator alone replays the serial bid/submit sequence while
//    the workers are parked.
//
//  * CENTRAL BEST-EFFORT SERVER configured: every dispatch on every
//    cluster may consume from the shared grant FIFO — an ordering
//    coupling no time window preserves, because grant order depends on
//    the full serial interleaving of dispatches across clusters.  The
//    engine runs the COUPLED-LOCKSTEP strategy: all shard simulators
//    draw insertion ids from ONE shared counter
//    (Simulator::share_ids), and the coordinator executes events one
//    at a time in merged (time, priority, id) order across the shard
//    queues — by induction this reproduces the serial engine's id
//    assignment and execution order exactly, so every FIFO operation
//    happens in serial order.  The serial arrival pump is mirrored as
//    a *virtual* event (its id is allocated from the shared counter at
//    the serial position, but it never enters a shard queue).  Once
//    the campaign completes (`completed() == total_runs()`) the FIFO
//    is provably silent forever — no run is pending or running
//    anywhere, so no future dispatch can pop, kill or complete a grant
//    — and the engine hands the remaining replay to the parallel
//    strategy above (static streaming or windows, resumed from the
//    current arrival cursor).  In the tail, concurrent id draws stay
//    per-shard monotone, which is all the tie-break needs.
//
// In all strategies the serial tie-break (time, priority, insertion
// id) is replayed exactly: per-cluster event streams keep their serial
// relative order because submissions reach each cluster in the serial
// arrival order, and cross-cluster same-instant ties commute because
// no shared state is touched between synchronization points.
//
// Cluster -> shard placement is a deterministic LPT partition by
// default (ShardPlacement::kLpt): clusters sorted by descending cost —
// `processors x (1 + home-trace job count)` — each assigned to the
// least-loaded shard (ties broken by cluster index, then lowest shard
// index), so make_skewed_grid's geometric ladder no longer piles the
// heavy clusters onto a few workers the way round-robin did.  Because
// volatility streams are keyed by cluster_index (not shard), placement
// can NEVER change the replay outcome — pinned by tests.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/arena.h"
#include "core/job.h"
#include "core/job_store.h"
#include "grid/besteffort.h"
#include "platform/platform.h"
#include "sim/grid_sim.h"
#include "sim/online_cluster.h"
#include "sim/simulator.h"

namespace lgs {

/// Cluster -> shard assignment strategy.  Outcome-neutral by
/// construction (the determinism contract keys all per-cluster streams
/// by cluster index): only load balance changes.
enum class ShardPlacement {
  kLpt,        ///< longest-processing-time partition over the cost model
  kRoundRobin  ///< cluster i -> shard i % shard_count (the PR-8 layout)
};

const char* to_string(ShardPlacement p);
/// Parse "lpt" / "round-robin"; throws std::invalid_argument otherwise.
ShardPlacement shard_placement_from_string(const std::string& s);

/// Parallel drop-in for GridSim: same construction, submission and
/// run-once surface, same GridSimResult, bit-identical outcome.
///
/// `threads` requests the worker count: 0 = hardware_concurrency,
/// clamped to [1, cluster_count()].  Memory follows GridSim's
/// replay-arena discipline, but per shard: the coordinator arena holds
/// the store and routing tables, and each shard owns a private arena
/// for its simulator and clusters so PR 6's allocation discipline holds
/// without cross-thread contention.
///
/// Cluster -> shard placement is decided lazily (first access of
/// cluster()/clusters()/shard_of() or run()), so the LPT cost model can
/// see the trace split; submit everything before reading the placement
/// to get load-aware costs (earlier access falls back to node-count
/// costs — still deterministic, still outcome-identical).
class ShardGridSim {
 public:
  ShardGridSim(const LightGrid& grid, const GridSimOptions& opts,
               int threads = 0, Arena* arena = nullptr,
               ShardPlacement placement = ShardPlacement::kLpt);
  ~ShardGridSim();
  ShardGridSim(const ShardGridSim&) = delete;
  ShardGridSim& operator=(const ShardGridSim&) = delete;

  /// Register `j` with home cluster index `home` (see GridSim::submit).
  void submit(std::size_t home, const Job& j);
  /// Register `per_cluster[i]` as the local workload of cluster i.
  void submit_workloads(const std::vector<JobSet>& per_cluster);
  /// Borrow an already-built trace (see GridSim::submit_store).
  void submit_store(const JobStore& store);

  /// Route every submission, drive all shard queues until they drain
  /// (or `horizon`), and aggregate the outcome.  Callable once; worker
  /// threads live only inside this call.
  GridSimResult run(Time horizon = kTimeInfinity);

  std::size_t cluster_count() const { return grid_.clusters.size(); }
  const OnlineCluster& cluster(std::size_t i) const {
    ensure_materialized();
    return *clusters_[i];
  }
  /// The clusters in index order (grid/exchange bidding, validation).
  const std::vector<std::unique_ptr<OnlineCluster>>& clusters() const {
    ensure_materialized();
    return clusters_;
  }
  const LightGrid& grid() const { return grid_; }

  /// Effective shard count after clamping.
  int shard_count() const;
  /// The placement strategy in force.
  ShardPlacement placement() const { return placement_; }
  /// Which shard owns cluster `i` (decided by the placement strategy).
  int shard_of(std::size_t i) const {
    ensure_materialized();
    return static_cast<int>(shard_of_[i]);
  }
  /// Events executed across all shard simulators.
  std::uint64_t events_executed() const;
  /// Peak arena bytes: coordinator arena plus every shard arena.
  std::size_t arena_peak_bytes() const;

 private:
  struct Shard;

  const JobStore& jobs() const {
    return borrowed_ != nullptr ? *borrowed_ : store_;
  }
  /// Bind clusters to shards (placement + construction + central
  /// server).  Idempotent; called by run() and the cluster accessors.
  void ensure_materialized() const;
  /// Cluster -> shard map under placement_ (LPT over the cost model,
  /// or round-robin).
  std::vector<std::uint32_t> compute_placement() const;
  std::size_t fallback_target(std::size_t target, int min_procs) const;
  /// Routing target of one pending submission under static routing.
  std::size_t static_target(std::size_t pending_index) const;
  /// Serial-order routing + submission of one pending entry (dynamic
  /// strategies; runs on the coordinator with all shards quiesced).
  void route_one(std::size_t pending_index);
  void build_route_order();
  /// Mirror the serial pump: allocate the id the serial engine's next
  /// arrival-pump event would carry (coupled strategy only).
  void arm_pump();
  void run_single(Time horizon);
  void run_coupled(Time horizon);
  void run_static(Time horizon);
  void run_windows(Time horizon);
  void worker_static(std::size_t s, Time horizon);

  LightGrid grid_;
  GridSimOptions opts_;
  ShardPlacement placement_;
  Arena owned_arena_;  ///< unused (empty) when an external arena is given
  Arena& arena_;       ///< coordinator arena (store + routing tables)
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Lazily materialized (mutable: const accessors may trigger it).
  mutable std::vector<std::uint32_t> shard_of_;  ///< cluster -> shard
  mutable std::vector<std::unique_ptr<OnlineCluster>> clusters_;
  mutable std::unique_ptr<CentralServer> server_;
  mutable std::vector<std::size_t> deferred_reserve_;  ///< per home cluster
  mutable bool materialized_ = false;
  /// Shared insertion-id counter of the coupled strategy (serial id 1
  /// is the first bootstrap dispatch, as in GridSim).
  mutable std::atomic<EventId> id_counter_{1};
  JobStore store_;  ///< submissions via submit(); empty when borrowing
  const JobStore* borrowed_ = nullptr;
  ArenaVec<GridPending> pending_;
  ArenaVec<std::uint32_t> plan_;  ///< kGlobalPlan: pending index -> target
  ArenaVec<std::uint32_t> route_order_;  ///< pending indices by release
  std::size_t route_cursor_ = 0;  ///< next arrival (strategies resume here)
  bool pump_armed_ = false;  ///< coupled: virtual pump event pending
  Time pump_t_ = 0.0;
  EventId pump_id_ = 0;
  long migrations_ = 0;
  bool ran_ = false;
};

/// validate_grid_result over the sharded engine (same checks as the
/// serial overload).
std::vector<std::string> validate_grid_result(const ShardGridSim& sim,
                                              const GridSimResult& result);

}  // namespace lgs
