// Sharded multi-cluster replay (ROADMAP item 1: intra-grid
// parallelism): the clusters of ONE grid partitioned round-robin across
// worker threads, each advancing its shard's PRIVATE event queue
// (sim/simulator.h) out of a PRIVATE arena — with the hard requirement
// that the outcome is bit-identical to the serial GridSim, pinned by
// the FNV-1a golden digests of tests/test_shard_sim.cpp.
//
// Why clusters shard at all: jobs cross cluster boundaries only at
// their release instants (routing / exchange bids) and through the
// central best-effort server's grant queue.  Everything else —
// dispatch, backfilling, completions, volatility churn — is
// cluster-private, so the per-cluster event subsequences of the serial
// replay commute freely across clusters and can run concurrently.
// Three execution strategies follow (the determinism contract, also in
// docs/ARCHITECTURE.md):
//
//  * STATIC routing (isolated / global-plan, no best-effort bags):
//    every target is computable before the clock starts (the global
//    plan is an upfront prelude; fallback widening reads only static
//    processors()).  The coordinator thread streams arrivals in global
//    release order through one lock-free SPSC mailbox per shard
//    (core/spsc_ring.h); each worker alternates
//    `run_until(next_arrival, kGridArrivalPriority)` with submissions.
//    No barriers at all — wall-clock scales with the slowest shard.
//
//  * DYNAMIC routing (threshold / economic, no bags): exchange bids
//    read every cluster's expected_wait at each arrival instant, so the
//    engine runs conservative time-window barriers: workers quiesce
//    their shards at the next arrival instant T (run_until pins every
//    shard clock to exactly T, before the pump's queue position), then
//    the coordinator alone replays the serial bid/submit sequence while
//    the workers are parked.
//
//  * CENTRAL BEST-EFFORT SERVER configured: every dispatch on every
//    cluster may consume from the shared grant FIFO, an ordering
//    coupling no time window preserves — the engine forces ONE shard
//    and replays inline on the calling thread (provably the serial
//    event order, threads uninvolved).
//
// In all three strategies the serial tie-break (time, priority,
// insertion id) is replayed exactly: per-cluster event streams keep
// their serial relative order because submissions reach each cluster in
// the serial arrival order, and cross-cluster same-instant ties commute
// because no shared state is touched between barrier points.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/arena.h"
#include "core/job.h"
#include "core/job_store.h"
#include "grid/besteffort.h"
#include "platform/platform.h"
#include "sim/grid_sim.h"
#include "sim/online_cluster.h"
#include "sim/simulator.h"

namespace lgs {

/// Parallel drop-in for GridSim: same construction, submission and
/// run-once surface, same GridSimResult, bit-identical outcome.
///
/// `threads` requests the worker count: 0 = hardware_concurrency,
/// clamped to [1, cluster_count()], and forced to 1 when best-effort
/// bags are configured (see the determinism contract above).  Memory
/// follows GridSim's replay-arena discipline, but per shard: the
/// coordinator arena holds the store and routing tables, and each shard
/// owns a private arena for its simulator and clusters so PR 6's
/// allocation discipline holds without cross-thread contention.
class ShardGridSim {
 public:
  ShardGridSim(const LightGrid& grid, const GridSimOptions& opts,
               int threads = 0, Arena* arena = nullptr);
  ~ShardGridSim();
  ShardGridSim(const ShardGridSim&) = delete;
  ShardGridSim& operator=(const ShardGridSim&) = delete;

  /// Register `j` with home cluster index `home` (see GridSim::submit).
  void submit(std::size_t home, const Job& j);
  /// Register `per_cluster[i]` as the local workload of cluster i.
  void submit_workloads(const std::vector<JobSet>& per_cluster);
  /// Borrow an already-built trace (see GridSim::submit_store).
  void submit_store(const JobStore& store);

  /// Route every submission, drive all shard queues until they drain
  /// (or `horizon`), and aggregate the outcome.  Callable once; worker
  /// threads live only inside this call.
  GridSimResult run(Time horizon = kTimeInfinity);

  std::size_t cluster_count() const { return clusters_.size(); }
  const OnlineCluster& cluster(std::size_t i) const { return *clusters_[i]; }
  /// The clusters in index order (grid/exchange bidding, validation).
  const std::vector<std::unique_ptr<OnlineCluster>>& clusters() const {
    return clusters_;
  }
  const LightGrid& grid() const { return grid_; }

  /// Effective shard count after clamping (1 when bags are configured).
  int shard_count() const;
  /// Which shard owns cluster `i` (round-robin: i % shard_count()).
  int shard_of(std::size_t i) const { return static_cast<int>(shard_of_[i]); }
  /// Events executed across all shard simulators.
  std::uint64_t events_executed() const;
  /// Peak arena bytes: coordinator arena plus every shard arena.
  std::size_t arena_peak_bytes() const;

 private:
  struct Shard;

  const JobStore& jobs() const {
    return borrowed_ != nullptr ? *borrowed_ : store_;
  }
  std::size_t fallback_target(std::size_t target, int min_procs) const;
  /// Routing target of one pending submission under static routing.
  std::size_t static_target(std::size_t pending_index) const;
  /// Serial-order routing + submission of one pending entry (dynamic
  /// strategies; runs on the coordinator with all shards quiesced).
  void route_one(std::size_t pending_index);
  void build_route_order();
  void run_single(Time horizon);
  void run_static(Time horizon);
  void run_windows(Time horizon);
  void worker_static(std::size_t s, Time horizon);

  LightGrid grid_;
  GridSimOptions opts_;
  Arena owned_arena_;  ///< unused (empty) when an external arena is given
  Arena& arena_;       ///< coordinator arena (store + routing tables)
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint32_t> shard_of_;  ///< cluster index -> shard index
  std::vector<std::unique_ptr<OnlineCluster>> clusters_;
  std::unique_ptr<CentralServer> server_;
  JobStore store_;  ///< submissions via submit(); empty when borrowing
  const JobStore* borrowed_ = nullptr;
  ArenaVec<GridPending> pending_;
  ArenaVec<std::uint32_t> plan_;  ///< kGlobalPlan: pending index -> target
  ArenaVec<std::uint32_t> route_order_;  ///< pending indices by release
  long migrations_ = 0;
  bool ran_ = false;
};

/// validate_grid_result over the sharded engine (same checks as the
/// serial overload).
std::vector<std::string> validate_grid_result(const ShardGridSim& sim,
                                              const GridSimResult& result);

}  // namespace lgs
