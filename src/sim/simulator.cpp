#include "sim/simulator.h"

#include <stdexcept>

namespace lgs {

EventId Simulator::at(Time t, Callback cb, int priority) {
  if (t < now_ - kTimeEps)
    throw std::invalid_argument("cannot schedule an event in the past");
  const EventId id = next_id_++;
  queue_.push(Ev{t, priority, id, std::move(cb)});
  return id;
}

void Simulator::run(Time horizon) {
  while (!queue_.empty()) {
    Ev ev = queue_.top();
    if (ev.t > horizon) break;
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    now_ = ev.t;
    ++executed_;
    ev.cb();
  }
  if (now_ < horizon && horizon != kTimeInfinity) now_ = horizon;
}

}  // namespace lgs
