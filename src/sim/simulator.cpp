#include "sim/simulator.h"

#include <stdexcept>

namespace lgs {

EventId Simulator::at(Time t, Callback cb, int priority) {
  if (t < now_ - kTimeEps)
    throw std::invalid_argument("cannot schedule an event in the past");
  const EventId id = next_id_++;
  queue_.push(Ev{t, priority, id, std::move(cb)});
  return id;
}

void Simulator::run(Time horizon) {
  while (!queue_.empty()) {
    if (queue_.top().t > horizon) break;
    // Move the event out instead of copying: the std::function callback
    // may own an arbitrarily large capture, and top() is the only
    // remaining reference to it once we pop.  priority_queue only
    // exposes a const ref, but mutating the element is safe here
    // because pop() runs before any further heap access.
    Ev ev = std::move(const_cast<Ev&>(queue_.top()));
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) continue;
    now_ = ev.t;
    ++executed_;
    ev.cb();
  }
  // A drained queue means every surviving cancellation targets an event
  // that already fired (or never existed): flush them so cancel-after-
  // fire cannot grow the set across run() calls.
  if (queue_.empty()) cancelled_.clear();
  if (now_ < horizon && horizon != kTimeInfinity) now_ = horizon;
}

}  // namespace lgs
