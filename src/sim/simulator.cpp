#include "sim/simulator.h"

#include <algorithm>

#include "core/profiler.h"

namespace lgs {

Simulator::~Simulator() {
  // Destroy the payload of every still-pending event, then the recycled
  // overflow blocks and the slot chunks (deallocate is a no-op when an
  // arena owns them — the replay lifetime releases everything at once).
  while (!queue_.empty()) {
    release_slot(queue_.top().slot);
    queue_.pop();
  }
  for (void* mem : overflow_free_)
    ref_.deallocate(mem, kOverflowBlock, alignof(std::max_align_t));
  for (Slot* chunk : slot_chunks_)
    ref_.deallocate(chunk, kSlotChunk * sizeof(Slot), alignof(Slot));
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  if (slot_count_ == slot_chunks_.size() * kSlotChunk) {
    Slot* chunk = static_cast<Slot*>(
        ref_.allocate(kSlotChunk * sizeof(Slot), alignof(Slot)));
    for (std::size_t i = 0; i < kSlotChunk; ++i) ::new (chunk + i) Slot;
    slot_chunks_.push_back(chunk);
    // Cold branch: slot growth tracks peak concurrently-pending events.
    LGS_PROF_HIGHWATER("sim.slots_highwater", slot_count_ + kSlotChunk);
  }
  return static_cast<std::uint32_t>(slot_count_++);
}

void Simulator::release_slot(std::uint32_t index) {
  Slot& slot = slot_at(index);
  void* payload = slot.ops->inline_stored ? static_cast<void*>(slot.buf)
                                          : slot.heap;
  slot.ops->destroy(payload);
  if (!slot.ops->inline_stored) release_overflow(slot.heap, slot.ops->size);
  slot.ops = nullptr;
  slot.heap = nullptr;
  free_slots_.push_back(index);
}

void* Simulator::acquire_overflow(std::size_t size) {
  if (size <= kOverflowBlock) {
    if (!overflow_free_.empty()) {
      void* mem = overflow_free_.back();
      overflow_free_.pop_back();
      return mem;
    }
    ++overflow_blocks_;
    return ref_.allocate(kOverflowBlock, alignof(std::max_align_t));
  }
  // Oversized capture: plain heap allocation even when arena-backed (no
  // such callback is on a hot path, and an unbounded capture must not
  // bloat the replay arena; the pooled classes cover every engine
  // callback).
  return ::operator new(size);
}

void Simulator::release_overflow(void* mem, std::size_t size) {
  if (size <= kOverflowBlock)
    overflow_free_.push_back(mem);
  else
    ::operator delete(mem);
}

void Simulator::prune_cancellations() {
  // Exact membership pass: keep only cancellations that still match a
  // pending event.  Everything else targets a consumed id and can never
  // match again.  The pending ids are enumerated straight off the heap's
  // container (order irrelevant).
  std::unordered_set<EventId> pending;
  pending.reserve(queue_.entries().size());
  EventId min_pending = next_id_;
  for (const QEntry& e : queue_.entries()) {
    pending.insert(e.id);
    min_pending = std::min(min_pending, e.id);
  }
  for (auto it = cancelled_.begin(); it != cancelled_.end();) {
    if (pending.count(*it) == 0)
      it = cancelled_.erase(it);
    else
      ++it;
  }
  // Every id below the smallest pending one has been consumed.
  watermark_ = std::max(watermark_, min_pending);
  next_prune_ = std::max(kMinPrune, 2 * cancelled_.size());
}

void Simulator::step() {
  const QEntry top = queue_.top();
  queue_.pop();
  // In-order consumption (the common case: timers fire roughly in
  // schedule order) advances the watermark for free.
  if (top.id == watermark_) ++watermark_;
  if (cancelled_.erase(top.id) > 0) {
    release_slot(top.slot);
    LGS_PROF_COUNT("sim.cancelled_skips", 1);
    return;
  }
  now_ = top.t;
  ++executed_;
  LGS_PROF_COUNT("sim.events", 1);
  // The slot reference stays valid while the callback schedules new
  // events (slots live in fixed chunks: growth never relocates).  The
  // payload is destroyed only after the call returns.
  Slot& slot = slot_at(top.slot);
  void* payload = slot.ops->inline_stored ? static_cast<void*>(slot.buf)
                                          : slot.heap;
  try {
    slot.ops->invoke(payload);
  } catch (...) {
    release_slot(top.slot);
    throw;
  }
  release_slot(top.slot);
}

bool Simulator::peek_next(Time* t, int* priority, EventId* id) {
  // Same cancelled-entry disposal as step(), but stop before executing:
  // the head reported here is exactly the event a subsequent step_one()
  // will run.
  while (!queue_.empty()) {
    const QEntry top = queue_.top();
    if (cancelled_.count(top.id) > 0) {
      queue_.pop();
      if (top.id == watermark_) ++watermark_;
      cancelled_.erase(top.id);
      release_slot(top.slot);
      LGS_PROF_COUNT("sim.cancelled_skips", 1);
      continue;
    }
    if (t) *t = top.t;
    if (priority) *priority = top.priority;
    if (id) *id = top.id;
    return true;
  }
  note_if_drained();
  return false;
}

bool Simulator::step_one() {
  while (!queue_.empty()) {
    const std::uint64_t before = executed_;
    step();
    if (executed_ != before) {
      note_if_drained();
      return true;
    }
  }
  note_if_drained();
  return false;
}

void Simulator::note_if_drained() {
  // A drained queue means every surviving cancellation targets an event
  // that already fired (or never existed): flush them — and every id so
  // far is consumed, so the watermark jumps to next_id_.
  if (queue_.empty()) {
    cancelled_.clear();
    watermark_ = next_id_;
    next_prune_ = kMinPrune;
  }
}

void Simulator::reset_for_restore(Time now, EventId next_id,
                                  std::uint64_t executed) {
  while (!queue_.empty()) {
    release_slot(queue_.top().slot);
    queue_.pop();
  }
  cancelled_.clear();
  next_prune_ = kMinPrune;
  now_ = now;
  next_id_ = next_id;
  // restore_event lowers this to the smallest re-scheduled id; with no
  // pending events every id below next_id has been consumed.
  watermark_ = next_id;
  executed_ = executed;
}

void Simulator::run(Time horizon) {
  LGS_PROF_ZONE("sim.run");
  while (!queue_.empty() && queue_.top().t <= horizon) step();
  note_if_drained();
  if (now_ < horizon && horizon != kTimeInfinity) now_ = horizon;
}

void Simulator::run_until(Time t, int before_priority) {
  if (t < now_ - kTimeEps)
    throw std::invalid_argument("run_until cannot rewind the clock");
  LGS_PROF_ZONE("sim.run");
  while (!queue_.empty()) {
    const QEntry& top = queue_.top();
    // Exact queue-order comparison (no epsilons): identical to the Later
    // tie-break, so the stop position matches the serial pump's slot.
    if (!(top.t < t || (top.t == t && top.priority < before_priority))) break;
    step();
  }
  note_if_drained();
  if (t > now_) now_ = t;
}

}  // namespace lgs
